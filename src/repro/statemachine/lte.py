"""The 4G (LTE) two-level hierarchical UE state machine of Figure 1a.

Top level merges the EMM and ECM machines into three states —
``DEREGISTERED``, ``CONNECTED`` and ``IDLE``.  Sub-states record the
event that brought the UE into the top-level state, which is what the
paper's violation reports name (e.g. ``S1_REL_S, HO`` — a handover
attempted while idle after a connection release).

Interpretation choices (documented in DESIGN.md §5): entering ``IDLE``
via ``S1_CONN_REL`` lands in ``S1_REL_S_1`` when released from a
service-request/attach/TAU connection and in ``S1_REL_S_2`` when
released from a handover, matching the two release sub-states the
figure draws.
"""

from __future__ import annotations

from .base import MachineSpec, MachineState, StateMachine
from .events import ATCH, DTCH, HO, LTE_EVENTS, S1_CONN_REL, SRV_REQ, TAU

__all__ = [
    "DEREGISTERED",
    "CONNECTED",
    "IDLE",
    "LTE_SPEC",
    "make_lte_machine",
]

# Top-level states.
DEREGISTERED = "DEREGISTERED"
CONNECTED = "CONNECTED"
IDLE = "IDLE"

# Sub-states (bottom level of Figure 1a).
_DEREG_S = "DEREG_S"
_ATCH_S = "ATCH_S"
_SRV_REQ_S = "SRV_REQ_S"
_HO_S = "HO_S"
_TAU_S_CONN = "TAU_S_CONN"
_S1_REL_S_1 = "S1_REL_S_1"
_S1_REL_S_2 = "S1_REL_S_2"
_TAU_S_IDLE = "TAU_S_IDLE"

LTE_SPEC = MachineSpec(
    name="4G",
    vocabulary=LTE_EVENTS,
    top_states=(DEREGISTERED, CONNECTED, IDLE),
    sub_states={
        DEREGISTERED: (_DEREG_S,),
        CONNECTED: (_ATCH_S, _SRV_REQ_S, _HO_S, _TAU_S_CONN),
        IDLE: (_S1_REL_S_1, _S1_REL_S_2, _TAU_S_IDLE),
    },
    transitions={
        # Registration.
        (DEREGISTERED, ATCH): (CONNECTED, _ATCH_S),
        # Detach is legal from both registered top-level states.
        (CONNECTED, DTCH): (DEREGISTERED, _DEREG_S),
        (IDLE, DTCH): (DEREGISTERED, _DEREG_S),
        # Connection release: the landing sub-state depends on how the
        # connection was being used (Figure 1a's S1_REL_S_1 / S1_REL_S_2).
        (CONNECTED, S1_CONN_REL): (
            IDLE,
            {
                _ATCH_S: _S1_REL_S_1,
                _SRV_REQ_S: _S1_REL_S_1,
                _TAU_S_CONN: _S1_REL_S_1,
                _HO_S: _S1_REL_S_2,
            },
        ),
        # Mobility while connected.
        (CONNECTED, HO): (CONNECTED, _HO_S),
        (CONNECTED, TAU): (CONNECTED, _TAU_S_CONN),
        # Idle-mode activity.
        (IDLE, SRV_REQ): (CONNECTED, _SRV_REQ_S),
        (IDLE, TAU): (IDLE, _TAU_S_IDLE),
    },
    # §5.2.1: ATCH, DTCH, SRV_REQ and HO have deterministic destinations
    # regardless of source state, so they bootstrap the replay.
    bootstrap_events={
        ATCH: (CONNECTED, _ATCH_S),
        DTCH: (DEREGISTERED, _DEREG_S),
        SRV_REQ: (CONNECTED, _SRV_REQ_S),
        HO: (CONNECTED, _HO_S),
    },
    connected_state=CONNECTED,
    idle_state=IDLE,
    initial=MachineState(DEREGISTERED, _DEREG_S),
)


def make_lte_machine(bootstrapped: bool = False) -> StateMachine:
    """Create a fresh 4G machine.

    Parameters
    ----------
    bootstrapped:
        When False (the replay default) the machine starts with an
        *undetermined* state and must be bootstrapped from the stream;
        when True it starts in ``DEREGISTERED`` (the generation default).
    """
    state = LTE_SPEC.initial if bootstrapped else None
    return StateMachine(LTE_SPEC, state)
