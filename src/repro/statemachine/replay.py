"""Replay engine: validate streams against a 3GPP state machine.

This implements the paper's evaluation procedure (§5.2.1):

* Bootstrap the machine from the first event with a deterministic
  destination (``ATCH``/``DTCH``/``SRV_REQ``/``HO`` in 4G); events before
  the bootstrap are excluded from violation accounting.
* Replay each subsequent event; a violating event increments a counter
  and leaves the state unchanged.
* Record the duration spent in each top-level state (sojourn times);
  trailing incomplete sojourns are discarded.

The outputs feed every fidelity metric that depends on domain rules:
Table 3, Table 5 (violations) and the sojourn columns of Table 6.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .base import MachineSpec, StateMachine

__all__ = ["ViolationRecord", "StreamReplay", "DatasetReplay", "replay_events", "replay_dataset"]

#: Sub-state families reported by the paper: both numbered release
#: sub-states collapse to the ``S1_REL_S`` label of Table 3.  Shared
#: with the vectorized oracle (:mod:`repro.validate.oracle`) so both
#: replay paths label violations identically.
SUB_STATE_FAMILIES = {
    "S1_REL_S_1": "S1_REL_S",
    "S1_REL_S_2": "S1_REL_S",
}

#: Backwards-compatible private alias.
_SUB_STATE_FAMILIES = SUB_STATE_FAMILIES


@dataclass(frozen=True)
class ViolationRecord:
    """One state-violating event.

    ``state_label`` follows the paper's reporting convention: the
    sub-state family when the violation happens in a sub-state the paper
    names (e.g. ``S1_REL_S``), otherwise the top-level state.
    """

    index: int
    top_state: str
    sub_state: str
    event: str

    @property
    def state_label(self) -> str:
        family = _SUB_STATE_FAMILIES.get(self.sub_state)
        if family is not None:
            return family
        return self.top_state

    @property
    def pattern(self) -> tuple[str, str]:
        """(state label, event) pair, the unit Table 3 counts."""
        return (self.state_label, self.event)


@dataclass
class StreamReplay:
    """Replay outcome for a single stream."""

    total_events: int
    counted_events: int
    violations: list[ViolationRecord]
    sojourns: dict[str, list[float]]
    bootstrapped: bool

    @property
    def violating_events(self) -> int:
        return len(self.violations)

    @property
    def has_violation(self) -> bool:
        return bool(self.violations)

    def mean_sojourn(self, state: str) -> float | None:
        """Average completed sojourn in ``state``; None when never visited."""
        values = self.sojourns.get(state)
        if not values:
            return None
        return sum(values) / len(values)


@dataclass
class DatasetReplay:
    """Aggregated replay outcome across a dataset of streams."""

    streams: list[StreamReplay] = field(default_factory=list)

    def add(self, replay: StreamReplay) -> None:
        self.streams.append(replay)

    # ------------------------------------------------------------------
    # Violation statistics (Tables 3 and 5)
    # ------------------------------------------------------------------
    @property
    def counted_events(self) -> int:
        return sum(s.counted_events for s in self.streams)

    @property
    def violating_events(self) -> int:
        return sum(s.violating_events for s in self.streams)

    @property
    def event_violation_rate(self) -> float:
        """Fraction of counted events that violate state transitions."""
        total = self.counted_events
        if total == 0:
            return 0.0
        return self.violating_events / total

    @property
    def stream_violation_rate(self) -> float:
        """Fraction of streams with at least one violating event."""
        if not self.streams:
            return 0.0
        return sum(1 for s in self.streams if s.has_violation) / len(self.streams)

    def top_violation_patterns(self, k: int = 3) -> list[tuple[tuple[str, str], float]]:
        """The ``k`` most frequent (state label, event) violation pairs.

        Returns pairs with their share of *counted events*, matching
        Table 3's percentages.  Ties order deterministically by
        (count desc, label, event) — the same normalization the
        vectorized oracle uses, so both paths report identical tables.
        """
        counter: Counter[tuple[str, str]] = Counter()
        for stream in self.streams:
            for violation in stream.violations:
                counter[violation.pattern] += 1
        total = self.counted_events
        if total == 0:
            return []
        ordered = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
        return [(pattern, count / total) for pattern, count in ordered[:k]]

    # ------------------------------------------------------------------
    # Sojourn statistics (Figure 2, Table 6)
    # ------------------------------------------------------------------
    def per_ue_mean_sojourns(self, state: str) -> list[float]:
        """Average sojourn in ``state`` for every UE that visited it.

        This is the quantity whose CDF Figures 2 and 5 plot.
        """
        means = (s.mean_sojourn(state) for s in self.streams)
        return [m for m in means if m is not None]

    def all_sojourns(self, state: str) -> list[float]:
        """Every completed sojourn in ``state``, pooled across UEs."""
        values: list[float] = []
        for stream in self.streams:
            values.extend(stream.sojourns.get(state, ()))
        return values


def replay_events(
    events: Sequence[tuple[float, str]], spec: MachineSpec
) -> StreamReplay:
    """Replay one stream of ``(timestamp, event_name)`` pairs.

    Timestamps must be non-decreasing; violations of that are a data bug,
    not a semantic violation, so they raise ``ValueError``.
    """
    machine = StateMachine(spec, state=None)
    violations: list[ViolationRecord] = []
    sojourns: dict[str, list[float]] = {top: [] for top in spec.top_states}

    counted = 0
    entered_at: float | None = None
    previous_time: float | None = None

    for index, (timestamp, event) in enumerate(events):
        if previous_time is not None and timestamp < previous_time:
            raise ValueError(
                f"timestamps must be non-decreasing; event {index} at "
                f"{timestamp} follows {previous_time}"
            )
        previous_time = timestamp

        if not machine.started:
            if machine.try_bootstrap(event):
                entered_at = timestamp
            # Pre-bootstrap events are excluded from the violation count.
            continue

        counted += 1
        before = machine.state
        legal = machine.step(event)
        if not legal:
            violations.append(
                ViolationRecord(
                    index=index,
                    top_state=before.top,
                    sub_state=before.sub,
                    event=event,
                )
            )
            continue
        if machine.state.top != before.top:
            # Top-level state changed: the sojourn in the old state ends.
            if entered_at is not None:
                sojourns[before.top].append(timestamp - entered_at)
            entered_at = timestamp

    return StreamReplay(
        total_events=len(events),
        counted_events=counted,
        violations=violations,
        sojourns=sojourns,
        bootstrapped=machine.started,
    )


def replay_dataset(
    streams: Iterable[Sequence[tuple[float, str]]], spec: MachineSpec
) -> DatasetReplay:
    """Replay every stream and aggregate (see :class:`DatasetReplay`)."""
    result = DatasetReplay()
    for events in streams:
        result.add(replay_events(events, spec))
    return result
