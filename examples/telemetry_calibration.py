"""Model-driven telemetry calibration (§2.2's second use case).

Network management monitors control traffic with bounded memory; the
paper argues high-fidelity traffic models help choose monitoring
parameters (e.g. a sampling rate) *before* deployment.  This example:

1. trains CPT-GPT through the ``Session`` facade on one capture,
2. calibrates the smallest sampling rate that keeps the event-breakdown
   estimate within a target error — using only *synthesized* traffic,
3. validates the chosen rate on a held-out "live" capture, and
4. sizes a count-min sketch for per-UE heavy-hitter detection against
   the synthesized population.

Run:  python examples/telemetry_calibration.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioSpec, Session
from repro.core import CPTGPTConfig, TrainingConfig
from repro.mcn import CountMinSketch, SampledBreakdownMonitor, calibrate_sampling_rate
from repro.trace import SyntheticTraceConfig, generate_trace

TARGET_ERROR = 0.01  # 1 percentage point on any event-type share
SCENARIO = ScenarioSpec(
    name="telemetry", device_type="phone", hour=20, num_ues=350, seed=21
)


def main() -> None:
    print("== training the traffic model ==")
    session = Session(SCENARIO).synthesize().fit(
        "cpt-gpt",
        config=CPTGPTConfig(
            d_model=48, num_layers=2, num_heads=4, d_ff=96, head_hidden=96, max_len=160
        ),
        training=TrainingConfig(epochs=16, batch_size=48, learning_rate=3e-3, seed=0),
    )

    print("\n== calibrating the sampling rate on synthesized traffic ==")
    synthesized = session.generated(600, seed=4)
    print("rate     max breakdown error (synthesized)")
    for rate in (0.005, 0.01, 0.05, 0.1, 0.5):
        error = SampledBreakdownMonitor(sampling_rate=rate, seed=0).max_error(synthesized)
        print(f"{rate:6.3f}  {error:10.3%}")
    chosen = calibrate_sampling_rate(synthesized, target_error=TARGET_ERROR, seed=0)
    print(f"chosen rate for <= {TARGET_ERROR:.1%} error: {chosen}")

    print("\n== validating on a held-out live capture ==")
    live = generate_trace(
        SyntheticTraceConfig(num_ues=500, device_type="phone", hour=20, seed=2121)
    )
    live_error = SampledBreakdownMonitor(sampling_rate=chosen, seed=1).max_error(live)
    verdict = "OK" if live_error <= 2 * TARGET_ERROR else "MISSED"
    print(f"live max breakdown error at rate {chosen}: {live_error:.3%} [{verdict}]")

    print("\n== sizing a count-min sketch for heavy-hitter UEs ==")
    truth: dict[str, int] = {}
    for stream in synthesized:
        truth[stream.ue_id] = len(stream)
    for width in (256, 1024, 4096):
        sketch = CountMinSketch(width=width, depth=4, seed=0)
        for stream in synthesized:
            sketch.add(stream.ue_id, len(stream))
        errors = [sketch.query(ue) - count for ue, count in truth.items()]
        print(
            f"width {width:5d} ({sketch.memory_bytes / 1024:6.1f} KiB): "
            f"mean overcount {np.mean(errors):6.2f} events, "
            f"max {np.max(errors)}"
        )
    threshold = int(np.percentile(list(truth.values()), 99))
    sketch = CountMinSketch(width=4096, depth=4, seed=0)
    for stream in synthesized:
        sketch.add(stream.ue_id, len(stream))
    hitters = sketch.heavy_hitters(list(truth), threshold)
    true_hitters = {ue for ue, count in truth.items() if count >= threshold}
    found = {ue for ue, _ in hitters}
    recall = len(found & true_hitters) / max(len(true_hitters), 1)
    print(
        f"heavy hitters (>= {threshold} events): {len(true_hitters)} true, "
        f"{len(found)} flagged, recall {recall:.0%}"
    )


if __name__ == "__main__":
    main()
