"""Quickstart: the whole Figure 4 pipeline through the Session facade.

One chainable object drives everything:

1. ``synthesize`` — simulate an operator control-plane capture (the
   proprietary-data substitute) plus a held-out test capture,
2. ``fit``        — train CPT-GPT (any registered backend works),
3. ``generate``   — synthesize a fresh UE population (cached),
4. ``evaluate``   — score it with every fidelity metric from Table 2.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ScenarioSpec, Session
from repro.core import CPTGPTConfig, TrainingConfig

SCENARIO = ScenarioSpec(
    name="quickstart", device_type="phone", hour=20, num_ues=400, seed=7
)


def main() -> None:
    # 1. A one-hour capture of 400 phone UEs at 20:00 (evening peak).
    print("== synthesizing operator trace ==")
    session = Session(SCENARIO).synthesize()
    print(
        f"training: {len(session.dataset)} UEs, "
        f"{session.dataset.total_events} events; "
        f"test: {len(session.test_dataset)} UEs"
    )

    # 2+3. Tokenize (Design 1), train with supervised ML (no GAN), and
    # package the model with its initial-event distribution.
    print("\n== training CPT-GPT ==")
    session.fit(
        "cpt-gpt",
        config=CPTGPTConfig(
            d_model=48, num_layers=2, num_heads=4, d_ff=96, head_hidden=96, max_len=160
        ),
        training=TrainingConfig(epochs=20, batch_size=48, learning_rate=3e-3, seed=0),
    )
    generator = session.generator()
    result = generator.last_training_result
    print(f"model: {generator.unwrap().model.num_parameters():,} parameters "
          f"(paper-scale is ~725K)")
    print(
        f"trained {len(result.epochs)} epochs in {result.wall_time_seconds:.1f}s; "
        f"loss {result.epochs[0].total:.3f} -> {result.final_loss:.3f}"
    )

    # 4. Synthesize a fresh UE population.
    print("\n== generating synthetic traffic ==")
    generated = session.generated(300, seed=42)
    print(f"generated {len(generated)} streams, {generated.total_events} events")

    # 5. Fidelity vs the held-out capture (Table 2's metrics).
    print("\n== fidelity report (vs held-out real trace) ==")
    report = session.evaluate()
    print(report.summary())
    print("\nevent breakdown differences (synthesized - real):")
    for event, diff in report.breakdown_diff.items():
        print(f"  {event:12s} {diff:+.2%}")


if __name__ == "__main__":
    main()
