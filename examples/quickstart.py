"""Quickstart: synthesize a trace, train CPT-GPT, generate, evaluate.

Walks the full Figure 4 pipeline end to end in a couple of minutes on a
laptop CPU:

1. simulate an operator control-plane trace (the proprietary-data
   substitute),
2. fit the multi-modal tokenizer and train a small CPT-GPT,
3. package the model with its initial-event distribution,
4. generate a synthetic UE population, and
5. score it with every fidelity metric from Table 2.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CPTGPT, CPTGPTConfig, GeneratorPackage, TrainingConfig, train
from repro.metrics import fidelity_report
from repro.statemachine import LTE_EVENTS
from repro.tokenization import StreamTokenizer
from repro.trace import SyntheticTraceConfig, generate_trace


def main() -> None:
    # 1. A one-hour capture of 400 phone UEs at 20:00 (evening peak).
    print("== synthesizing operator trace ==")
    training_trace = generate_trace(
        SyntheticTraceConfig(num_ues=400, device_type="phone", hour=20, seed=7)
    )
    test_trace = generate_trace(
        SyntheticTraceConfig(num_ues=300, device_type="phone", hour=20, seed=1007)
    )
    print(
        f"training: {len(training_trace)} UEs, {training_trace.total_events} events; "
        f"test: {len(test_trace)} UEs"
    )

    # 2. Tokenize (Design 1) and train with supervised ML (no GAN).
    print("\n== training CPT-GPT ==")
    tokenizer = StreamTokenizer(LTE_EVENTS).fit(training_trace)
    config = CPTGPTConfig(
        d_model=48, num_layers=2, num_heads=4, d_ff=96, head_hidden=96, max_len=160
    )
    model = CPTGPT(config, np.random.default_rng(0))
    print(f"model: {model.num_parameters():,} parameters (paper-scale is ~725K)")
    result = train(
        model,
        training_trace,
        tokenizer,
        TrainingConfig(epochs=20, batch_size=48, learning_rate=3e-3, seed=0),
    )
    print(
        f"trained {len(result.epochs)} epochs in {result.wall_time_seconds:.1f}s; "
        f"loss {result.epochs[0].total:.3f} -> {result.final_loss:.3f}"
    )

    # 3. The released artifact: weights + tokenizer + initial-event dist.
    package = GeneratorPackage(
        model, tokenizer, training_trace.initial_event_distribution(), "phone"
    )

    # 4. Synthesize a fresh UE population.
    print("\n== generating synthetic traffic ==")
    generated = package.generate(
        300, np.random.default_rng(42), start_time=20 * 3600.0
    )
    print(f"generated {len(generated)} streams, {generated.total_events} events")

    # 5. Fidelity vs the held-out capture (Table 2's metrics).
    print("\n== fidelity report (vs held-out real trace) ==")
    report = fidelity_report(test_trace, generated)
    print(report.summary())
    print("\nevent breakdown differences (synthesized - real):")
    for event, diff in report.breakdown_diff.items():
        print(f"  {event:12s} {diff:+.2%}")


if __name__ == "__main__":
    main()
