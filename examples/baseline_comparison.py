"""Side-by-side comparison of all four generators on one device type.

A miniature of the paper's Tables 5-7 for phones: fit/train SMM-1,
SMM-k, NetShare and CPT-GPT on the same capture, generate the same
number of streams from each, and print every fidelity metric.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import NetShare, NetShareConfig, SMM1Generator, SMMClusteredGenerator
from repro.core import CPTGPT, CPTGPTConfig, GeneratorPackage, TrainingConfig, train
from repro.metrics import fidelity_report
from repro.statemachine import LTE_EVENTS
from repro.tokenization import StreamTokenizer
from repro.trace import SyntheticTraceConfig, generate_trace

STREAMS = 300


def main() -> None:
    print("== data ==")
    training = generate_trace(
        SyntheticTraceConfig(num_ues=400, device_type="phone", hour=20, seed=31)
    )
    test = generate_trace(
        SyntheticTraceConfig(num_ues=300, device_type="phone", hour=20, seed=3131)
    )
    tokenizer = StreamTokenizer(LTE_EVENTS).fit(training)
    start = 20 * 3600.0

    generators = {}

    print("fitting SMM-1 (domain knowledge, 1 model)...")
    generators["SMM-1"] = lambda rng: SMM1Generator.fit(training, "phone").generate(
        STREAMS, rng, start
    )

    print("fitting SMM-k (domain knowledge, clustered)...")
    smmk = SMMClusteredGenerator.fit(training, "phone", num_clusters=12)
    print(f"  {smmk.num_models} cluster models, {smmk.num_cdfs} sojourn CDFs")
    generators["SMM-20k"] = lambda rng: smmk.generate(STREAMS, rng, start)

    print("training NetShare (GAN + LSTM)...")
    netshare = NetShare(
        NetShareConfig(max_len=160, batch_generation=5), tokenizer,
        np.random.default_rng(1),
    )
    netshare.train(training, epochs=20, batch_size=32, seed=0)
    generators["NetShare"] = lambda rng: netshare.generate(STREAMS, rng, "phone", start)

    print("training CPT-GPT (transformer, no domain knowledge)...")
    model = CPTGPT(
        CPTGPTConfig(d_model=48, num_layers=2, num_heads=4, d_ff=96,
                     head_hidden=96, max_len=160),
        np.random.default_rng(0),
    )
    train(model, training, tokenizer,
          TrainingConfig(epochs=20, batch_size=48, learning_rate=3e-3, seed=0))
    package = GeneratorPackage(
        model, tokenizer, training.initial_event_distribution(), "phone"
    )
    generators["CPT-GPT"] = lambda rng: package.generate(STREAMS, rng, start)

    print(f"\n== fidelity vs held-out capture ({STREAMS} streams each) ==")
    header = (
        f"{'generator':<10} {'viol.ev':>8} {'viol.st':>8} {'soj.CONN':>9} "
        f"{'soj.IDLE':>9} {'flow':>7} {'brkdwn':>7}"
    )
    print(header)
    print("-" * len(header))
    for name, generate in generators.items():
        trace = generate(np.random.default_rng(77))
        flat = fidelity_report(test, trace).as_flat_dict()
        print(
            f"{name:<10} {flat['violation_events']:>8.3%} "
            f"{flat['violation_streams']:>8.1%} {flat['sojourn_connected']:>9.1%} "
            f"{flat['sojourn_idle']:>9.1%} {flat['flow_length_all']:>7.1%} "
            f"{flat['avg_breakdown_diff']:>7.2%}"
        )
    print(
        "\nexpected shape (paper): SMM rows show zero violations (machine "
        "built in); CPT-GPT beats NetShare on violations and CONNECTED "
        "sojourns; SMM-1 is worst on sojourns/flow length."
    )


if __name__ == "__main__":
    main()
