"""Side-by-side comparison of every registered generator on one capture.

A miniature of the paper's Tables 5-7 for phones, driven entirely by the
registry: every backend — SMM-1, SMM-k, NetShare, CPT-GPT, and any
plugin you register — is fitted on the same capture through the uniform
``TrafficGenerator`` protocol, generates the same number of streams,
and is scored with every fidelity metric.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro import ScenarioSpec, Session, available_generators
from repro.baselines import NetShareConfig
from repro.core import CPTGPTConfig, TrainingConfig

STREAMS = 300
SCENARIO = ScenarioSpec(
    name="baseline-comparison", device_type="phone", hour=20, num_ues=400, seed=31
)

#: Per-backend constructor options at example scale (backends without an
#: entry run with their defaults).
OPTIONS = {
    "smm-k": dict(num_clusters=12),
    "netshare": dict(
        config=NetShareConfig(max_len=160, batch_generation=5), epochs=20
    ),
    "cpt-gpt": dict(
        config=CPTGPTConfig(
            d_model=48, num_layers=2, num_heads=4, d_ff=96, head_hidden=96, max_len=160
        ),
        training=TrainingConfig(epochs=20, batch_size=48, learning_rate=3e-3, seed=0),
    ),
}


def main() -> None:
    print("== data ==")
    session = Session(SCENARIO).synthesize()
    print(
        f"capture: {len(session.dataset)} UEs / "
        f"{session.dataset.total_events} events"
    )

    for name in available_generators():
        print(f"fitting {name}...")
        session.fit(name, **OPTIONS.get(name, {}))

    print(f"\n== fidelity vs held-out capture ({STREAMS} streams each) ==")
    header = (
        f"{'generator':<10} {'viol.ev':>8} {'viol.st':>8} {'soj.CONN':>9} "
        f"{'soj.IDLE':>9} {'flow':>7} {'brkdwn':>7}"
    )
    print(header)
    print("-" * len(header))
    for name in available_generators():
        session.generate(STREAMS, seed=77, generator=name)
        flat = session.evaluate(generator=name).as_flat_dict()
        print(
            f"{name:<10} {flat['violation_events']:>8.3%} "
            f"{flat['violation_streams']:>8.1%} {flat['sojourn_connected']:>9.1%} "
            f"{flat['sojourn_idle']:>9.1%} {flat['flow_length_all']:>7.1%} "
            f"{flat['avg_breakdown_diff']:>7.2%}"
        )
    print(
        "\nexpected shape (paper): SMM rows show zero violations (machine "
        "built in); CPT-GPT beats NetShare on violations and CONNECTED "
        "sojourns; SMM-1 is worst on sojourns/flow length."
    )


if __name__ == "__main__":
    main()
