"""Adapting to time-of-day drift with transfer learning (Design 3, §5.5).

Control-plane traffic drifts over the day (diurnal UE behaviour — the
paper's C5).  Instead of training one model per hour from scratch, the
operator trains a base model on the first hour and fine-tunes it
recursively for each subsequent hour.  This example measures both the
time savings and the per-hour fidelity of the adapted models.

Run:  python examples/hourly_drift_transfer.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import (
    CPTGPT,
    CPTGPTConfig,
    GeneratorPackage,
    TrainingConfig,
    derive_hourly_models,
    train,
)
from repro.metrics import fidelity_report
from repro.statemachine import LTE_EVENTS
from repro.tokenization import StreamTokenizer
from repro.trace import SyntheticTraceConfig, generate_hourly_traces, generate_trace

HOURS = [8, 12, 16, 20]
MODEL_CONFIG = CPTGPTConfig(
    d_model=48, num_layers=2, num_heads=4, d_ff=96, head_hidden=96, max_len=160
)


def main() -> None:
    print(f"== hourly traces for hours {HOURS} ==")
    hourly = generate_hourly_traces(250, HOURS, device_type="phone", seed=11)
    for hour, trace in sorted(hourly.items()):
        print(f"  hour {hour:2d}: {trace.total_events:6d} events "
              f"({trace.total_events / len(trace):.1f} per UE)")

    tokenizer = StreamTokenizer(LTE_EVENTS).fit(hourly[HOURS[0]])

    # --- scratch ensemble: one model per hour, all from scratch --------
    print("\n== from-scratch ensemble ==")
    scratch_cfg = TrainingConfig(epochs=14, batch_size=48, learning_rate=3e-3, seed=0)
    t0 = time.perf_counter()
    scratch_models = {}
    for hour in HOURS:
        model = CPTGPT(MODEL_CONFIG, np.random.default_rng(0))
        result = train(model, hourly[hour], tokenizer, scratch_cfg)
        scratch_models[hour] = model
        print(f"  hour {hour:2d}: {result.wall_time_seconds:6.1f}s")
    scratch_total = time.perf_counter() - t0

    # --- transfer ensemble: first hour scratch, rest fine-tuned --------
    print("\n== transfer-learning ensemble ==")
    finetune_cfg = TrainingConfig(epochs=5, batch_size=48, learning_rate=1e-3, seed=0)
    t0 = time.perf_counter()
    ensemble = derive_hourly_models(
        lambda: CPTGPT(MODEL_CONFIG, np.random.default_rng(0)),
        hourly,
        tokenizer,
        scratch_cfg,
        finetune_cfg,
    )
    transfer_total = time.perf_counter() - t0
    for hour in HOURS:
        print(f"  hour {hour:2d}: {ensemble.results[hour].wall_time_seconds:6.1f}s")
    print(
        f"\nensemble wall time: scratch {scratch_total:.1f}s vs "
        f"transfer {transfer_total:.1f}s "
        f"({scratch_total / transfer_total:.2f}x faster via transfer)"
    )

    # --- fidelity of the transferred models per hour --------------------
    print("\n== per-hour fidelity of the transferred models ==")
    print("hour  violations  sojourn-CONN  sojourn-IDLE  flow-length")
    for hour in HOURS:
        package = GeneratorPackage(
            ensemble.models[hour],
            tokenizer,
            hourly[hour].initial_event_distribution(),
            "phone",
        )
        generated = package.generate(
            200, np.random.default_rng(hour), start_time=hour * 3600.0
        )
        test = generate_trace(
            SyntheticTraceConfig(num_ues=200, device_type="phone", hour=hour, seed=900 + hour)
        )
        flat = fidelity_report(test, generated).as_flat_dict()
        print(
            f"{hour:4d}  {flat['violation_streams']:10.1%}  "
            f"{flat['sojourn_connected']:12.1%}  {flat['sojourn_idle']:12.1%}  "
            f"{flat['flow_length_all']:11.1%}"
        )


if __name__ == "__main__":
    main()
