"""Adapting to time-of-day drift with transfer learning (Design 3, §5.5).

Control-plane traffic drifts over the day (diurnal UE behaviour — the
paper's C5).  Instead of training one model per hour from scratch, the
operator trains a base model on the first hour and adapts it
recursively for each subsequent hour through the ``TrafficGenerator``
protocol's transfer hook (``adapt``).  This example measures both the
time savings and the per-hour fidelity of the adapted models.

Run:  python examples/hourly_drift_transfer.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioSpec
from repro.api import CPTGPTGenerator
from repro.core import CPTGPTConfig, TrainingConfig
from repro.metrics import fidelity_report
from repro.trace import SyntheticTraceConfig, generate_hourly_traces, generate_trace

HOURS = [8, 12, 16, 20]
MODEL_CONFIG = CPTGPTConfig(
    d_model=48, num_layers=2, num_heads=4, d_ff=96, head_hidden=96, max_len=160
)
SCRATCH = TrainingConfig(epochs=14, batch_size=48, learning_rate=3e-3, seed=0)
FINETUNE = TrainingConfig(epochs=5, batch_size=48, learning_rate=1e-3, seed=0)


def scenario_for(hour: int) -> ScenarioSpec:
    return ScenarioSpec(name=f"phone-h{hour}", device_type="phone", hour=hour, seed=11)


def main() -> None:
    print(f"== hourly traces for hours {HOURS} ==")
    hourly = generate_hourly_traces(250, HOURS, device_type="phone", seed=11)
    for hour, trace in sorted(hourly.items()):
        print(f"  hour {hour:2d}: {trace.total_events:6d} events "
              f"({trace.total_events / len(trace):.1f} per UE)")

    # --- scratch ensemble: one generator per hour, all from scratch ----
    print("\n== from-scratch ensemble ==")
    scratch_models = {}
    for hour in HOURS:
        generator = CPTGPTGenerator(config=MODEL_CONFIG, training=SCRATCH)
        generator.fit(hourly[hour], scenario_for(hour))
        scratch_models[hour] = generator
        print(f"  hour {hour:2d}: {generator.fit_seconds:6.1f}s")
    scratch_total = sum(g.fit_seconds for g in scratch_models.values())

    # --- transfer ensemble: first hour scratch, rest adapted -----------
    # Hour h's model initializes hour h+1's fine-tune (Tables 4 and 9).
    print("\n== transfer-learning ensemble (recursive adapt) ==")
    ensemble = {}
    previous = CPTGPTGenerator(
        config=MODEL_CONFIG, training=SCRATCH, transfer=FINETUNE
    ).fit(hourly[HOURS[0]], scenario_for(HOURS[0]))
    ensemble[HOURS[0]] = previous
    print(f"  hour {HOURS[0]:2d}: {previous.fit_seconds:6.1f}s (scratch)")
    for hour in HOURS[1:]:
        previous = previous.adapt(hourly[hour], scenario_for(hour))
        ensemble[hour] = previous
        print(f"  hour {hour:2d}: {previous.fit_seconds:6.1f}s (adapted)")
    transfer_total = sum(g.fit_seconds for g in ensemble.values())
    print(
        f"\nensemble wall time: scratch {scratch_total:.1f}s vs "
        f"transfer {transfer_total:.1f}s "
        f"({scratch_total / transfer_total:.2f}x faster via transfer)"
    )

    # --- fidelity of the transferred models per hour --------------------
    print("\n== per-hour fidelity of the transferred models ==")
    print("hour  violations  sojourn-CONN  sojourn-IDLE  flow-length")
    for hour in HOURS:
        generated = ensemble[hour].generate(
            200, np.random.default_rng(hour), start_time=hour * 3600.0
        )
        test = generate_trace(
            SyntheticTraceConfig(num_ues=200, device_type="phone", hour=hour, seed=900 + hour)
        )
        flat = fidelity_report(test, generated).as_flat_dict()
        print(
            f"{hour:4d}  {flat['violation_streams']:10.1%}  "
            f"{flat['sojourn_connected']:12.1%}  {flat['sojourn_idle']:12.1%}  "
            f"{flat['flow_length_all']:11.1%}"
        )


if __name__ == "__main__":
    main()
