"""A faulted soak of the always-on traffic service.

Runs ``city-day`` as a supervised, paced service and injects the two
faults the robustness claims are about:

1. **worker kill** — SIGKILL producer worker 0 mid-generation; the
   supervisor restarts it from the merge cursors and the delivered
   timeline is provably unchanged;
2. **consumer stall** — the consumer stops pulling for a window; the
   bounded ring throttles producers, and once the degradation deadline
   passes the service sheds the lowest-priority cohort first, with
   every dropped event counted exactly.

Along the way every merged event tees through the rolling fidelity
gate, so the run ends with both an exact accounting check
(``merged == delivered + shed + pending``) and a full statistical
scorecard.

Run:  PYTHONPATH=src python examples/soak_service.py
"""

from __future__ import annotations

from repro.service import (
    DegradationPolicy,
    FaultPlan,
    KillWorker,
    StallConsumer,
    TrafficService,
)
from repro.validate import RollingGate
from repro.workload import Workload, get_workload

SCALE = 0.05  # keep the soak quick; crank this up for a real soak


def main() -> None:
    population = get_workload("city-day").scaled(SCALE)
    engine = Workload(population, seed=3)
    gate = RollingGate(population, seed=3)

    service = TrafficService(
        engine,
        speed=float("inf"),  # as fast as possible; use 60.0 for 1min=1h
        num_workers=2,
        chunk_events=1000,
        ring_events=2048,
        gate=gate,
        degradation=DegradationPolicy(
            degrade_after=0.3, shed_order=("cars", "tablets")
        ),
        faults=FaultPlan(
            faults=(
                KillWorker(at=0.5, worker=0),
                StallConsumer(at=2.5, duration=3.0),
            )
        ),
    )

    print("== soak:", population.name, f"x{SCALE} ==")
    report = service.run(
        duration=120.0,
        status_every=2.0,
        on_status=lambda snapshot: print("  ", snapshot.summary()),
    )

    status = report.status
    print("\n== outcome ==")
    print(f"state      : {status.state}")
    print(
        f"accounting : merged={status.merged_total} = "
        f"delivered={status.delivered} + shed={status.shed_total} "
        f"+ pending={status.pending}"
    )
    print(
        f"shedding   : {status.shed_by_cohort} "
        f"over {status.shed_episodes} episode(s)"
    )
    for line in status.incidents:
        print(f"incident   : {line}")
    print("\n== final scorecard ==")
    print(report.scorecard.summary())
    print("clean run:", report.clean)


if __name__ == "__main__":
    main()
