"""A regional chaos drill: killing the stadium cell mid-match.

The topology layer's flagship scenario: the ``stadium-flash-crowd``
workload placed on the ``stadium-cell-kill`` topology — one stadium
cell ringed by four neighbors — whose chaos schedule kills the stadium
cell for 30 minutes right through the ingress peak.  Every UE camped on
the dead cell re-registers at a live ring neighbor (a legal
release + service-request pair, so the conformance oracle stays green),
and the mass re-registration wave lands on the ring cells' regional
core.

This example:

1. runs the match twice — chaos on and chaos off — and diffs the
   per-cell connection counts, making the neighbor surge visible;
2. prints the per-region simulator report (latency, peak contexts,
   utilization) for the chaos run;
3. shows the same run through the conformance oracle: zero violations,
   because outage re-registrations are injected *through* the LTE state
   machine, not spliced in.

Run:  python examples/stadium_cell_kill.py
"""

from __future__ import annotations

from repro.validate import OracleValidator
from repro.workload import Workload, get_workload

SCALE = 0.05  # 120 UEs: big enough for a visible surge, quick to run


def _engine(chaos: str | None) -> Workload:
    population = get_workload("stadium-flash-crowd").scaled(SCALE)
    return Workload(
        population, seed=11, topology="stadium-cell-kill", chaos=chaos
    )


def main() -> None:
    engine = _engine(chaos=None)
    print("== scenario ==")
    print(engine.population.summary())
    print(engine.topology.summary())

    print("\n== the match, twice: chaos on vs chaos off ==")
    with_kill = engine.simulate(workers=4)
    without = _engine(chaos="off").simulate(workers=4)
    print(f"{'cell':>8}  {'calm':>6}  {'cell-kill':>9}  delta")
    for cell in engine.topology.topology.cell_names:
        calm = without.cell_connects.get(cell, 0)
        killed = with_kill.cell_connects.get(cell, 0)
        print(f"{cell:>8}  {calm:6d}  {killed:9d}  {killed - calm:+d}")

    print("\n== per-region load under the outage ==")
    for region in sorted(with_kill.per_region):
        sub = with_kill.region(region)
        print(
            f"region {region}: {sub.num_events} events | "
            f"p99 {sub.latency_percentile(99):.2f} ms | "
            f"peak contexts {sub.peak_connected_contexts} | "
            f"utilization {sub.utilization:.1%}"
        )

    print("\n== conformance under chaos ==")
    spec = engine.population.cohorts[0].scenario.machine_spec
    oracle = OracleValidator(spec)
    _engine(chaos=None).run(validators=(oracle,))
    report = oracle.report()
    print(
        f"{report.total_events} events validated: "
        f"{report.violating_events} violations "
        f"(event rate {report.event_rate:.4f}) — the outage wave is "
        "state-machine legal"
    )


if __name__ == "__main__":
    main()
