"""Autoscaling an MCN through a stadium flash crowd.

The paper's design-study use case (§2.2) at population scale: a city's
background traffic plus a stadium cohort whose control events compress
into a trapezoidal ingress → match → egress surge.  The workload engine
streams the merged, event-time ordered timeline of both cohorts straight
into the MCN consumers — no materialized trace, so the same code runs at
millions of UEs.

This example:

1. builds the ``stadium-flash-crowd`` composite workload from the
   registry and rescales it,
2. streams it through the event-driven MME simulator and reports the
   latency/context load the surge induces,
3. drives a target-utilization autoscaler across the same timeline and
   prints the per-window scaling decisions — the flash crowd is clearly
   visible as the worker count chases the ingress ramp.

Run:  python examples/stadium_flash_crowd.py
"""

from __future__ import annotations

from repro.mcn import AutoscalePolicy, LTE_COSTS, ServiceCostModel
from repro.workload import Workload, get_workload

#: A deliberately slow single-vCPU software MME (40x the reference
#: per-procedure costs) so a few hundred UEs are enough to push the
#: autoscaler around — at real anchor speeds the same curve appears at
#: ~100x the population, which the engine streams just as happily.
SOFTWARE_MME = ServiceCostModel(
    costs_ms={event: cost * 40.0 for event, cost in LTE_COSTS.costs_ms.items()}
)


def surge_report(engine: Workload, timeline) -> None:
    print("\n== control-plane load under the flash crowd ==")
    report = engine.simulate(workers=8, cost_model=SOFTWARE_MME, events=timeline)
    print(
        f"{report.num_events} events over {report.duration_seconds / 3600.0:.1f}h | "
        f"throughput {report.throughput_eps:.1f} ev/s | "
        f"p50 {report.latency_percentile(50):.2f} ms | "
        f"p99 {report.latency_percentile(99):.2f} ms | "
        f"peak contexts {report.peak_connected_contexts}"
    )


def autoscaling_through_the_match(engine: Workload, timeline) -> None:
    print("\n== autoscaler chasing the ingress ramp (10-min windows) ==")
    trace = engine.autoscale(
        AutoscalePolicy(target_utilization=0.6, max_workers=48, max_step=6),
        window_seconds=600.0,
        cost_model=SOFTWARE_MME,
        events=timeline,
    )
    print("window  offered-load  workers  utilization")
    for i, (load, workers, util) in enumerate(
        zip(trace.offered_load, trace.workers, trace.utilization)
    ):
        bar = "#" * workers
        print(f"{i:6d}  {load:12.3f}  {workers:7d}  {util:10.1%}  {bar}")
    print(
        f"peak workers: {trace.peak_workers}; scaling actions: "
        f"{trace.scaling_actions}; mean utilization: {trace.mean_utilization:.1%}"
    )


def main() -> None:
    population = get_workload("stadium-flash-crowd").scaled(0.25)
    print("== workload ==")
    print(population.summary())

    # num_workers parallelizes shard generation without changing the
    # timeline (the shard plan is fixed by the population and seed).
    engine = Workload(population, seed=11, num_workers=2)

    # Both consumers read the same timeline; at example scale a list is
    # cheap, so pay generation once (at population scale, stream each
    # consumer its own pass instead).
    timeline = list(engine.events())

    surge_report(engine, timeline)
    autoscaling_through_the_match(engine, timeline)


if __name__ == "__main__":
    main()
