"""MCN performance evaluation driven by synthesized control traffic.

The paper's first motivating use case (§2.2): evaluating a mobile-core
design's latency, throughput and autoscaling against realistic
control-plane workloads — the role its synthesized traces played for the
Aether 5G community.

This example:

1. trains CPT-GPT through the ``Session`` facade on a real
   (simulated-operator) capture,
2. synthesizes a *larger* UE population than was captured,
3. replays both traces through the event-driven MME simulator and
   compares the load profiles they induce, and
4. sweeps worker counts to find the provisioning knee, then evaluates a
   target-utilization autoscaler against a multi-hour synthetic day
   assembled with constant-memory streaming (``iter_streams``).

Run:  python examples/mcn_load_evaluation.py
"""

from __future__ import annotations

from repro import ScenarioSpec, Session
from repro.core import CPTGPTConfig, TrainingConfig
from repro.mcn import AutoscalePolicy, MCNSimulator, simulate_autoscaling
from repro.trace import TraceDataset

SCENARIO = ScenarioSpec(
    name="mcn-load", device_type="phone", hour=20, num_ues=400, seed=3
)


def compare_load_profiles(real: TraceDataset, synthetic: TraceDataset) -> None:
    print("\n== load profile: real capture vs synthesized population ==")
    for name, trace in (("real", real), ("synthetic", synthetic)):
        report = MCNSimulator(workers=4, seed=1).run(trace)
        print(
            f"{name:>9}: {report.num_events:6d} events | "
            f"throughput {report.throughput_eps:7.1f} ev/s | "
            f"p50 {report.latency_percentile(50):5.2f} ms | "
            f"p99 {report.latency_percentile(99):6.2f} ms | "
            f"peak contexts {report.peak_connected_contexts}"
        )


def provisioning_sweep(synthetic: TraceDataset) -> None:
    print("\n== provisioning sweep (synthesized workload) ==")
    print("workers  p99 latency (ms)  utilization")
    for workers in (1, 2, 4, 8):
        report = MCNSimulator(workers=workers, seed=1).run(synthetic)
        print(
            f"{workers:7d}  {report.latency_percentile(99):16.2f}  "
            f"{report.utilization:10.1%}"
        )


def autoscaling_day(session: Session) -> None:
    """Autoscaling across an evening ramp built from per-hour populations.

    The synthetic populations for hours 17-22 emulate the diurnal load
    the operator would see; sizes follow the phone activity profile.
    Streams for each hour are consumed lazily off the generator
    (``iter_streams``), so building the ramp never materializes more
    than one generation batch at a time.
    """
    print("\n== autoscaling over an evening ramp (17:00-22:00) ==")
    day = TraceDataset(streams=[])
    for hour, ues in ((17, 150), (18, 200), (19, 260), (20, 320), (21, 280), (22, 200)):
        streams = session.iter_streams(ues, seed=9 + hour, start_time=hour * 3600.0)
        for stream in streams:
            day.add(stream)
    trace = simulate_autoscaling(
        day,
        AutoscalePolicy(target_utilization=0.6, min_workers=1, max_workers=32, max_step=4),
        window_seconds=600.0,
    )
    print("window  offered-load  workers  utilization")
    for i, (load, workers, util) in enumerate(
        zip(trace.offered_load, trace.workers, trace.utilization)
    ):
        print(f"{i:6d}  {load:12.3f}  {workers:7d}  {util:10.1%}")
    print(
        f"peak workers: {trace.peak_workers}; scaling actions: "
        f"{trace.scaling_actions}; mean utilization: {trace.mean_utilization:.1%}"
    )


def main() -> None:
    print("== capturing + training ==")
    session = Session(SCENARIO).synthesize().fit(
        "cpt-gpt",
        config=CPTGPTConfig(
            d_model=48, num_layers=2, num_heads=4, d_ff=96, head_hidden=96, max_len=160
        ),
        training=TrainingConfig(epochs=16, batch_size=48, learning_rate=3e-3, seed=0),
    )

    # Synthesize a population 2x the captured one — the point of a traffic
    # generator is extrapolating beyond the captured UEs.
    synthetic = session.generated(800, seed=5)

    compare_load_profiles(session.dataset, synthetic)
    provisioning_sweep(synthetic)
    autoscaling_day(session)


if __name__ == "__main__":
    main()
