"""CLI end-to-end tests through temporary files."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.trace import load_jsonl


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "synthesize", "train", "generate", "evaluate", "experiments",
            "workload", "topology", "registry", "serve",
        ):
            args = parser.parse_args([command] + _required_args(command))
            assert args.command == command

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_paper_flag(self):
        args = build_parser().parse_args(["train", "t.jsonl", "m.npz", "--paper"])
        assert args.paper is True

        from repro.cli import _model_config

        config = _model_config(args, num_event_types=6)
        assert (config.d_model, config.d_ff) == (128, 1024)  # §5.1 shape
        assert config.max_len == 500  # the paper's horizon, not the CLI default
        default = _model_config(
            build_parser().parse_args(["train", "t.jsonl", "m.npz"]), 6
        )
        assert default.d_model == 64
        assert default.max_len == 192
        explicit = _model_config(
            build_parser().parse_args(
                ["train", "t.jsonl", "m.npz", "--paper", "--max-len", "256"]
            ),
            6,
        )
        assert explicit.max_len == 256


def _required_args(command: str) -> list[str]:
    return {
        "synthesize": ["out.jsonl"],
        "train": ["trace.jsonl", "model.npz"],
        "generate": ["model.npz", "out.jsonl"],
        "evaluate": ["real.jsonl", "synth.jsonl"],
        "experiments": [],
        "workload": ["city-day"],
        "topology": [],
        "registry": [],
        "serve": ["city-day"],
    }[command]


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        """``python -m repro`` reaches the CLI (satellite: __main__)."""
        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "registry"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "cpt-gpt" in proc.stdout
        assert "phone-evening" in proc.stdout


class TestEndToEnd:
    def test_synthesize_then_evaluate(self, tmp_path, capsys):
        real = tmp_path / "real.jsonl"
        other = tmp_path / "other.jsonl"
        assert main(["synthesize", str(real), "--ues", "40", "--seed", "1"]) == 0
        assert main(["synthesize", str(other), "--ues", "40", "--seed", "2"]) == 0
        assert len(load_jsonl(real)) == 40
        assert main(["evaluate", str(real), str(other)]) == 0
        out = capsys.readouterr().out
        assert "violations" in out
        assert "sojourn" in out

    def test_train_and_generate_pipeline(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        package = tmp_path / "model.npz"
        generated = tmp_path / "generated.jsonl"
        main(["synthesize", str(trace), "--ues", "60", "--seed", "3"])
        code = main(
            [
                "train", str(trace), str(package),
                "--epochs", "1", "--d-model", "16", "--d-ff", "32",
                "--heads", "2", "--layers", "1", "--max-len", "96",
            ]
        )
        assert code == 0
        assert package.exists()
        code = main(
            ["generate", str(package), str(generated), "--count", "12", "--seed", "4"]
        )
        assert code == 0
        loaded = load_jsonl(generated)
        assert len(loaded) == 12
        out = capsys.readouterr().out
        assert "trained" in out

    def test_synthesize_5g(self, tmp_path):
        path = tmp_path / "nr.jsonl"
        main(["synthesize", str(path), "--ues", "10", "--technology", "5G"])
        loaded = load_jsonl(path)
        assert "REGISTER" in loaded.vocabulary

    def test_train_derives_nr_vocabulary_for_5g(self, tmp_path):
        """Training on a 5G trace must use the NR vocabulary, not LTE."""
        trace = tmp_path / "nr.jsonl"
        package = tmp_path / "nr.npz"
        main(["synthesize", str(trace), "--ues", "40", "--technology", "5G",
              "--seed", "1"])
        code = main(
            [
                "train", str(trace), str(package),
                "--epochs", "1", "--d-model", "16", "--d-ff", "32",
                "--heads", "2", "--layers", "1", "--max-len", "96",
            ]
        )
        assert code == 0

        from repro import load_generator

        generator = load_generator(package)
        assert "REGISTER" in generator.vocabulary
        assert "ATCH" not in generator.vocabulary
        assert generator.scenario.technology == "5G"

    def test_registry_command_lists_backends(self, capsys):
        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        for name in ("cpt-gpt", "smm-1", "smm-k", "netshare", "phone-5g"):
            assert name in out

    def test_registry_command_lists_workloads(self, capsys):
        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        assert "workloads:" in out
        for name in ("city-day", "stadium-flash-crowd", "iot-firmware-storm"):
            assert name in out

    def test_workload_command_streams_into_simulator(self, capsys):
        code = main(
            ["workload", "stadium", "--scale", "0.02", "--seed", "1",
             "--autoscale", "--window", "600"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stadium-flash-crowd" in out  # alias resolves to the canonical name
        assert "simulated" in out
        assert "autoscale over" in out

    def test_serve_command_runs_to_completion(self, tmp_path, capsys):
        status_json = tmp_path / "status.jsonl"
        code = main(
            ["serve", "city-day", "--scale", "0.02", "--speed", "inf",
             "--workers", "0", "--seed", "3", "--status-every", "0",
             "--status-json", str(status_json)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "accounting" in out
        assert "delivered" in out
        lines = status_json.read_text().strip().splitlines()
        assert lines, "final status snapshot written"
        import json

        final = json.loads(lines[-1])
        assert final["accounted"] is True
        assert final["delivered"] > 0

    def test_registry_command_lists_topologies(self, capsys):
        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        assert "topologies:" in out
        for name in ("metro-commute", "stadium-cell-kill", "motorway"):
            assert name in out

    def test_topology_command_lists_and_summarizes(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "firmware-storm-by-ta" in out
        assert main(["topology", "stadium-cell-kill"]) == 0
        out = capsys.readouterr().out
        assert "cell-outage stadium" in out

    def test_workload_command_with_topology_reports_regions(self, capsys):
        code = main(
            ["workload", "handover-storm", "--scale", "0.02", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The preset's default motorway topology kicks in: the summary
        # and the per-region simulator report both show up.
        assert "motorway" in out
        assert "region mwr0" in out
        assert "region mwr1" in out


class TestSessionFacadeEndToEnd:
    def test_cli_artifact_round_trips_through_session(self, tmp_path):
        """CLI-trained artifacts plug straight into the Session facade."""
        import numpy as np

        from repro import ScenarioSpec, Session

        trace = tmp_path / "trace.jsonl"
        package = tmp_path / "model.npz"
        main(["synthesize", str(trace), "--ues", "50", "--seed", "8",
              "--hour", "20"])
        main(
            [
                "train", str(trace), str(package),
                "--epochs", "1", "--d-model", "16", "--d-ff", "32",
                "--heads", "2", "--layers", "1", "--max-len", "96",
            ]
        )

        session = Session(
            ScenarioSpec(name="cli-e2e", num_ues=50, hour=20, seed=8)
        ).load(package)
        report = session.generate(15, seed=3).evaluate()
        assert 0.0 <= report.violations.event_rate <= 1.0

        # The session's generation matches the CLI's generate command.
        out = tmp_path / "out.jsonl"
        main(["generate", str(package), str(out), "--count", "15",
              "--start-time", str(20 * 3600.0), "--seed", "3"])
        cli_trace = load_jsonl(out)
        session_trace = session.generated(15, seed=3)
        assert [s.ue_id for s in cli_trace] == [s.ue_id for s in session_trace]
