"""CLI end-to-end tests through temporary files."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.trace import load_jsonl


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("synthesize", "train", "generate", "evaluate", "experiments"):
            args = parser.parse_args([command] + _required_args(command))
            assert args.command == command

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


def _required_args(command: str) -> list[str]:
    return {
        "synthesize": ["out.jsonl"],
        "train": ["trace.jsonl", "model.npz"],
        "generate": ["model.npz", "out.jsonl"],
        "evaluate": ["real.jsonl", "synth.jsonl"],
        "experiments": [],
    }[command]


class TestEndToEnd:
    def test_synthesize_then_evaluate(self, tmp_path, capsys):
        real = tmp_path / "real.jsonl"
        other = tmp_path / "other.jsonl"
        assert main(["synthesize", str(real), "--ues", "40", "--seed", "1"]) == 0
        assert main(["synthesize", str(other), "--ues", "40", "--seed", "2"]) == 0
        assert len(load_jsonl(real)) == 40
        assert main(["evaluate", str(real), str(other)]) == 0
        out = capsys.readouterr().out
        assert "violations" in out
        assert "sojourn" in out

    def test_train_and_generate_pipeline(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        package = tmp_path / "model.npz"
        generated = tmp_path / "generated.jsonl"
        main(["synthesize", str(trace), "--ues", "60", "--seed", "3"])
        code = main(
            [
                "train", str(trace), str(package),
                "--epochs", "1", "--d-model", "16", "--d-ff", "32",
                "--heads", "2", "--layers", "1", "--max-len", "96",
            ]
        )
        assert code == 0
        assert package.exists()
        code = main(
            ["generate", str(package), str(generated), "--count", "12", "--seed", "4"]
        )
        assert code == 0
        loaded = load_jsonl(generated)
        assert len(loaded) == 12
        out = capsys.readouterr().out
        assert "trained" in out

    def test_synthesize_5g(self, tmp_path):
        path = tmp_path / "nr.jsonl"
        main(["synthesize", str(path), "--ues", "10", "--technology", "5G"])
        loaded = load_jsonl(path)
        assert "REGISTER" in loaded.vocabulary
