"""MachineSpec validation and StateMachine edge cases."""

from __future__ import annotations

import pytest

from repro.statemachine import LTE_EVENTS, MachineSpec, MachineState, StateMachine


def _minimal_spec(**overrides) -> MachineSpec:
    base = dict(
        name="mini",
        vocabulary=LTE_EVENTS,
        top_states=("A", "B"),
        sub_states={"A": ("a",), "B": ("b1", "b2")},
        transitions={
            ("A", "ATCH"): ("B", "b1"),
            ("B", "DTCH"): ("A", "a"),
            ("B", "HO"): ("B", {"b1": "b2", "b2": "b1"}),
        },
        bootstrap_events={"ATCH": ("B", "b1")},
        connected_state="B",
        idle_state="A",
    )
    base.update(overrides)
    return MachineSpec(**base)


class TestSpecEdgeCases:
    def test_minimal_spec_validates(self):
        _minimal_spec().validate()

    def test_empty_substates_rejected(self):
        spec = _minimal_spec(sub_states={"A": (), "B": ("b1", "b2")})
        with pytest.raises(ValueError, match="no sub-states"):
            spec.validate()

    def test_mapping_substate_target_validated(self):
        spec = _minimal_spec(
            transitions={("B", "HO"): ("B", {"b1": "missing"})}
        )
        with pytest.raises(ValueError, match="unknown sub-state"):
            spec.validate()

    def test_bootstrap_unknown_event_rejected(self):
        spec = _minimal_spec(bootstrap_events={"NOPE": ("B", "b1")})
        with pytest.raises(ValueError, match="unknown event"):
            spec.validate()

    def test_sojourn_state_must_exist(self):
        spec = _minimal_spec(connected_state="Z")
        with pytest.raises(ValueError, match="not a top-level"):
            spec.validate()


class TestConditionalSubstateTransitions:
    def test_mapping_routes_by_current_substate(self):
        machine = StateMachine(_minimal_spec(), MachineState("B", "b1"))
        assert machine.step("HO")
        assert machine.state == MachineState("B", "b2")
        assert machine.step("HO")
        assert machine.state == MachineState("B", "b1")

    def test_mapping_without_entry_is_violation(self):
        spec = _minimal_spec(
            transitions={
                ("A", "ATCH"): ("B", "b1"),
                ("B", "HO"): ("B", {"b2": "b1"}),  # no entry for b1
            }
        )
        machine = StateMachine(spec, MachineState("B", "b1"))
        before = machine.state
        assert not machine.step("HO")
        assert machine.state == before

    def test_legal_events_before_bootstrap_lists_bootstraps(self):
        machine = StateMachine(_minimal_spec(), state=None)
        assert machine.legal_events() == ("ATCH",)
