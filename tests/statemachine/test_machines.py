"""Exhaustive legality tests of the 4G and 5G hierarchical machines."""

from __future__ import annotations

import pytest

from repro.statemachine import (
    LTE_EVENTS,
    LTE_SPEC,
    NR_EVENTS,
    NR_SPEC,
    MachineSpec,
    MachineState,
    StateMachine,
    make_lte_machine,
    make_nr_machine,
)


class TestVocabulary:
    def test_lte_has_six_events(self):
        assert len(LTE_EVENTS) == 6

    def test_nr_has_five_events(self):
        assert len(NR_EVENTS) == 5
        assert "TAU" not in NR_EVENTS

    def test_index_name_roundtrip(self):
        for i, name in enumerate(LTE_EVENTS):
            assert LTE_EVENTS.index(name) == i
            assert LTE_EVENTS.name(i) == name

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            LTE_EVENTS.index("NOPE")

    def test_bad_index_raises(self):
        with pytest.raises(IndexError):
            LTE_EVENTS.name(6)

    def test_duplicate_names_rejected(self):
        from repro.statemachine import EventVocabulary

        with pytest.raises(ValueError):
            EventVocabulary(("A", "A"))


class TestSpecValidation:
    def test_shipped_specs_validate(self):
        LTE_SPEC.validate()
        NR_SPEC.validate()

    def test_transition_to_unknown_state_rejected(self):
        spec = MachineSpec(
            name="bad",
            vocabulary=LTE_EVENTS,
            top_states=("A",),
            sub_states={"A": ("a",)},
            transitions={("A", "ATCH"): ("B", "b")},
            bootstrap_events={},
            connected_state="A",
            idle_state="A",
        )
        with pytest.raises(ValueError, match="unknown state"):
            spec.validate()

    def test_transition_on_unknown_event_rejected(self):
        spec = MachineSpec(
            name="bad",
            vocabulary=LTE_EVENTS,
            top_states=("A",),
            sub_states={"A": ("a",)},
            transitions={("A", "NOPE"): ("A", "a")},
            bootstrap_events={},
            connected_state="A",
            idle_state="A",
        )
        with pytest.raises(ValueError, match="unknown event"):
            spec.validate()


# Expected legality matrix for 4G: state -> set of legal events.
LTE_LEGAL = {
    "DEREGISTERED": {"ATCH"},
    "CONNECTED": {"DTCH", "S1_CONN_REL", "HO", "TAU"},
    "IDLE": {"SRV_REQ", "TAU", "DTCH"},
}


class TestLTEMachine:
    @pytest.mark.parametrize("top", sorted(LTE_LEGAL))
    def test_legality_matrix(self, top):
        for event in LTE_EVENTS:
            machine = make_lte_machine(bootstrapped=True)
            machine.state = _enter(machine, top)
            legal = machine.step(event)
            assert legal == (event in LTE_LEGAL[top]), (top, event)

    def test_violation_keeps_state(self):
        machine = make_lte_machine(bootstrapped=True)
        before = machine.state
        assert not machine.step("SRV_REQ")  # illegal in DEREGISTERED
        assert machine.state == before

    def test_attach_connects(self):
        machine = make_lte_machine(bootstrapped=True)
        assert machine.step("ATCH")
        assert machine.state.top == "CONNECTED"

    def test_release_from_service_lands_rel1(self):
        machine = make_lte_machine(bootstrapped=True)
        machine.step("ATCH")
        machine.step("S1_CONN_REL")
        assert machine.state == MachineState("IDLE", "S1_REL_S_1")

    def test_release_from_handover_lands_rel2(self):
        machine = make_lte_machine(bootstrapped=True)
        machine.step("ATCH")
        machine.step("HO")
        machine.step("S1_CONN_REL")
        assert machine.state == MachineState("IDLE", "S1_REL_S_2")

    def test_tau_in_idle_stays_idle(self):
        machine = make_lte_machine(bootstrapped=True)
        machine.step("ATCH")
        machine.step("S1_CONN_REL")
        assert machine.step("TAU")
        assert machine.state == MachineState("IDLE", "TAU_S_IDLE")

    def test_full_session_cycle(self):
        machine = make_lte_machine(bootstrapped=True)
        for event in ("ATCH", "S1_CONN_REL", "SRV_REQ", "HO", "TAU",
                      "S1_CONN_REL", "SRV_REQ", "S1_CONN_REL", "DTCH"):
            assert machine.step(event), event
        assert machine.state.top == "DEREGISTERED"

    def test_bootstrap_events(self):
        for event, expected_top in (
            ("ATCH", "CONNECTED"),
            ("DTCH", "DEREGISTERED"),
            ("SRV_REQ", "CONNECTED"),
            ("HO", "CONNECTED"),
        ):
            machine = make_lte_machine()
            assert machine.try_bootstrap(event)
            assert machine.state.top == expected_top

    def test_non_bootstrap_events_do_not_determine_state(self):
        for event in ("TAU", "S1_CONN_REL"):
            machine = make_lte_machine()
            assert not machine.try_bootstrap(event)
            assert not machine.started

    def test_step_before_bootstrap_raises(self):
        machine = make_lte_machine()
        with pytest.raises(RuntimeError, match="bootstrapped"):
            machine.step("ATCH")

    def test_double_bootstrap_raises(self):
        machine = make_lte_machine()
        machine.try_bootstrap("ATCH")
        with pytest.raises(RuntimeError):
            machine.try_bootstrap("ATCH")

    def test_unknown_event_raises(self):
        machine = make_lte_machine(bootstrapped=True)
        with pytest.raises(KeyError):
            machine.step("REGISTER")

    def test_legal_events_listing(self):
        machine = make_lte_machine(bootstrapped=True)
        machine.step("ATCH")
        assert set(machine.legal_events()) == LTE_LEGAL["CONNECTED"]


NR_LEGAL = {
    "RM-DEREGISTERED": {"REGISTER"},
    "CM-CONNECTED": {"DEREGISTER", "AN_REL", "HO"},
    "CM-IDLE": {"SRV_REQ", "DEREGISTER"},
}


class TestNRMachine:
    @pytest.mark.parametrize("top", sorted(NR_LEGAL))
    def test_legality_matrix(self, top):
        for event in NR_EVENTS:
            machine = make_nr_machine(bootstrapped=True)
            machine.state = _enter_nr(machine, top)
            legal = machine.step(event)
            assert legal == (event in NR_LEGAL[top]), (top, event)

    def test_no_tau_anywhere(self):
        assert all(event != "TAU" for (_, event) in NR_SPEC.transitions)

    def test_session_cycle(self):
        machine = make_nr_machine(bootstrapped=True)
        for event in ("REGISTER", "HO", "AN_REL", "SRV_REQ", "AN_REL", "DEREGISTER"):
            assert machine.step(event), event
        assert machine.state.top == "RM-DEREGISTERED"


def _enter(machine: StateMachine, top: str) -> MachineState:
    """A valid MachineState with the given 4G top-level state."""
    return MachineState(top, machine.spec.sub_states[top][0])


def _enter_nr(machine: StateMachine, top: str) -> MachineState:
    return MachineState(top, machine.spec.sub_states[top][0])
