"""Replay engine: bootstrap, violation accounting, sojourn extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.statemachine import LTE_SPEC, replay_dataset, replay_events


def _stream(*pairs):
    return list(pairs)


class TestBootstrap:
    def test_leading_non_bootstrap_events_excluded(self):
        replay = replay_events(
            _stream((0.0, "TAU"), (1.0, "S1_CONN_REL"), (2.0, "SRV_REQ"), (3.0, "S1_CONN_REL")),
            LTE_SPEC,
        )
        # TAU and S1_CONN_REL precede the bootstrap (SRV_REQ): excluded.
        assert replay.counted_events == 1
        assert replay.violating_events == 0
        assert replay.bootstrapped

    def test_never_bootstrapped_stream(self):
        replay = replay_events(_stream((0.0, "TAU"), (5.0, "TAU")), LTE_SPEC)
        assert not replay.bootstrapped
        assert replay.counted_events == 0
        assert not replay.has_violation

    def test_empty_stream(self):
        replay = replay_events([], LTE_SPEC)
        assert replay.total_events == 0
        assert replay.counted_events == 0


class TestViolations:
    def test_legal_stream_has_none(self):
        replay = replay_events(
            _stream((0.0, "ATCH"), (5.0, "S1_CONN_REL"), (30.0, "SRV_REQ"), (40.0, "S1_CONN_REL")),
            LTE_SPEC,
        )
        assert replay.violating_events == 0

    def test_violation_counted_and_state_kept(self):
        replay = replay_events(
            # After release we're IDLE; HO is illegal there, then SRV_REQ
            # must still be legal (state unchanged by the violation).
            _stream((0.0, "ATCH"), (5.0, "S1_CONN_REL"), (6.0, "HO"), (10.0, "SRV_REQ")),
            LTE_SPEC,
        )
        assert replay.violating_events == 1
        violation = replay.violations[0]
        assert violation.top_state == "IDLE"
        assert violation.event == "HO"
        assert violation.state_label == "S1_REL_S"  # the paper's Table 3 label

    def test_paper_table3_patterns_reportable(self):
        streams = [
            _stream((0.0, "SRV_REQ"), (1.0, "S1_CONN_REL"), (2.0, "S1_CONN_REL")),
            _stream((0.0, "SRV_REQ"), (1.0, "S1_CONN_REL"), (2.0, "HO")),
            _stream((0.0, "SRV_REQ"), (1.0, "SRV_REQ")),
        ]
        replay = replay_dataset(streams, LTE_SPEC)
        patterns = dict(replay.top_violation_patterns(3))
        assert ("S1_REL_S", "S1_CONN_REL") in patterns
        assert ("S1_REL_S", "HO") in patterns
        assert ("CONNECTED", "SRV_REQ") in patterns

    def test_out_of_order_timestamps_raise(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            replay_events(_stream((5.0, "ATCH"), (1.0, "DTCH")), LTE_SPEC)

    def test_event_violation_rate(self):
        streams = [
            _stream((0.0, "SRV_REQ"), (1.0, "S1_CONN_REL"), (2.0, "S1_CONN_REL")),
            _stream((0.0, "SRV_REQ"), (1.0, "S1_CONN_REL")),
        ]
        replay = replay_dataset(streams, LTE_SPEC)
        # counted events: stream1 -> 2 (after bootstrap), stream2 -> 1.
        assert replay.counted_events == 3
        assert replay.violating_events == 1
        assert replay.event_violation_rate == pytest.approx(1 / 3)
        assert replay.stream_violation_rate == pytest.approx(1 / 2)


class TestSojourns:
    def test_connected_sojourn_duration(self):
        replay = replay_events(
            _stream((0.0, "SRV_REQ"), (12.5, "S1_CONN_REL"), (100.0, "SRV_REQ"), (110.0, "S1_CONN_REL")),
            LTE_SPEC,
        )
        np.testing.assert_allclose(replay.sojourns["CONNECTED"], [12.5, 10.0])
        np.testing.assert_allclose(replay.sojourns["IDLE"], [87.5])

    def test_self_transitions_do_not_split_sojourn(self):
        replay = replay_events(
            _stream((0.0, "SRV_REQ"), (5.0, "HO"), (9.0, "TAU"), (20.0, "S1_CONN_REL")),
            LTE_SPEC,
        )
        # HO and TAU stay in CONNECTED; one 20-second sojourn.
        np.testing.assert_allclose(replay.sojourns["CONNECTED"], [20.0])

    def test_trailing_incomplete_sojourn_discarded(self):
        replay = replay_events(_stream((0.0, "SRV_REQ"), (5.0, "HO")), LTE_SPEC)
        assert replay.sojourns["CONNECTED"] == []

    def test_mean_sojourn_none_when_never_visited(self):
        replay = replay_events(_stream((0.0, "DTCH"), (1.0, "ATCH")), LTE_SPEC)
        assert replay.mean_sojourn("IDLE") is None

    def test_violating_event_does_not_end_sojourn(self):
        replay = replay_events(
            _stream((0.0, "SRV_REQ"), (5.0, "SRV_REQ"), (10.0, "S1_CONN_REL")),
            LTE_SPEC,
        )
        # The illegal SRV_REQ at t=5 must not cut the CONNECTED sojourn.
        np.testing.assert_allclose(replay.sojourns["CONNECTED"], [10.0])

    def test_per_ue_mean_sojourns_aggregation(self):
        streams = [
            _stream((0.0, "SRV_REQ"), (10.0, "S1_CONN_REL")),
            _stream((0.0, "SRV_REQ"), (30.0, "S1_CONN_REL")),
            _stream((0.0, "DTCH")),  # never visits CONNECTED
        ]
        replay = replay_dataset(streams, LTE_SPEC)
        assert sorted(replay.per_ue_mean_sojourns("CONNECTED")) == [10.0, 30.0]
        assert replay.all_sojourns("CONNECTED") == [10.0, 30.0]
