"""SMM baselines: empirical distributions, fitting, generation, clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    EmpiricalDistribution,
    KMeans,
    SMM1Generator,
    SMMClusteredGenerator,
    SemiMarkovModel,
    cluster_dataset,
    ue_features,
)
from repro.statemachine import LTE_SPEC, replay_dataset
from repro.trace import TraceDataset


class TestEmpiricalDistribution:
    def test_samples_within_range(self, rng):
        dist = EmpiricalDistribution(np.array([3.0, 1.0, 2.0]))
        draws = dist.sample(rng, size=1000)
        assert draws.min() >= 1.0 and draws.max() <= 3.0

    def test_scalar_sample(self, rng):
        dist = EmpiricalDistribution(np.array([5.0]))
        assert dist.sample(rng) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution(np.array([]))

    def test_cdf_monotone(self, rng):
        samples = rng.exponential(10, size=200)
        dist = EmpiricalDistribution(samples)
        grid = np.linspace(0, samples.max(), 50)
        cdf = dist.cdf(grid)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == 1.0

    def test_quantiles_match_source(self, rng):
        samples = rng.normal(100, 10, size=5000)
        dist = EmpiricalDistribution(samples)
        draws = dist.sample(rng, size=5000)
        assert np.median(draws) == pytest.approx(np.median(samples), rel=0.05)


class TestSemiMarkovModel:
    def test_fit_transition_probs_sum_to_one(self, phone_trace):
        model = SemiMarkovModel.fit(phone_trace, LTE_SPEC)
        for state, menu in model.transition_probs.items():
            assert sum(menu.values()) == pytest.approx(1.0), state

    def test_fit_on_empty_rejected(self):
        with pytest.raises(ValueError):
            SemiMarkovModel.fit(TraceDataset(), LTE_SPEC)

    def test_num_cdfs_positive(self, phone_trace):
        model = SemiMarkovModel.fit(phone_trace, LTE_SPEC)
        assert model.num_cdfs >= 4

    def test_generated_stream_is_legal(self, phone_trace, rng):
        model = SemiMarkovModel.fit(phone_trace, LTE_SPEC)
        streams = [
            model.generate_stream(rng, duration=3600.0, device_type="phone").as_pairs()
            for _ in range(30)
        ]
        replay = replay_dataset(streams, LTE_SPEC)
        assert replay.violating_events == 0

    def test_generated_timestamps_in_window(self, phone_trace, rng):
        model = SemiMarkovModel.fit(phone_trace, LTE_SPEC)
        stream = model.generate_stream(rng, duration=600.0, device_type="phone", start_time=1000.0)
        times = stream.timestamps()
        if times.size:
            assert times.min() >= 1000.0
            assert times.max() < 1600.0


class TestSMM1:
    def test_fit_generate(self, phone_trace, rng):
        generator = SMM1Generator.fit(phone_trace, "phone")
        trace = generator.generate(25, rng)
        assert len(trace) == 25
        replay = replay_dataset(trace.replay_pairs(), LTE_SPEC)
        assert replay.violating_events == 0

    def test_breakdown_close_to_training(self, phone_trace, rng):
        generator = SMM1Generator.fit(phone_trace, "phone")
        trace = generator.generate(150, rng)
        real = phone_trace.event_breakdown()
        synth = trace.event_breakdown()
        assert abs(real["SRV_REQ"] - synth.get("SRV_REQ", 0)) < 0.05


class TestSMMClustered:
    def test_fit_produces_multiple_models(self, phone_trace):
        generator = SMMClusteredGenerator.fit(phone_trace, "phone", num_clusters=6)
        assert 2 <= generator.num_models <= 6
        assert generator.num_cdfs > generator.num_models

    def test_generation_legal_and_sized(self, phone_trace, rng):
        generator = SMMClusteredGenerator.fit(phone_trace, "phone", num_clusters=6)
        trace = generator.generate(40, rng)
        assert len(trace) == 40
        replay = replay_dataset(trace.replay_pairs(), LTE_SPEC)
        assert replay.violating_events == 0

    def test_clustered_beats_single_on_flow_length(self, phone_trace, phone_trace_alt, rng):
        """The paper's SMM-1 vs SMM-20k gap: clustering restores diversity."""
        from repro.metrics import max_y_distance

        smm1 = SMM1Generator.fit(phone_trace, "phone").generate(150, rng)
        smmk = SMMClusteredGenerator.fit(phone_trace, "phone", num_clusters=10).generate(150, rng)
        real = phone_trace_alt.flow_lengths().astype(float)
        d1 = max_y_distance(real, smm1.flow_lengths().astype(float))
        dk = max_y_distance(real, smmk.flow_lengths().astype(float))
        assert dk < d1


class TestClustering:
    def test_ue_features_shape(self, phone_trace):
        features = ue_features(phone_trace, LTE_SPEC)
        assert features.shape == (len(phone_trace), 4)
        assert np.all(np.isfinite(features))

    def test_kmeans_labels_range(self, rng):
        points = np.vstack(
            [rng.normal(0, 1, (30, 2)), rng.normal(10, 1, (30, 2))]
        )
        labels = KMeans(num_clusters=2, seed=0).fit(points)
        assert set(labels.tolist()) == {0, 1}
        # The two blobs must separate.
        assert len(set(labels[:30].tolist())) == 1
        assert len(set(labels[30:].tolist())) == 1

    def test_kmeans_fewer_points_than_clusters(self, rng):
        points = rng.normal(size=(3, 2))
        labels = KMeans(num_clusters=10, seed=0).fit(points)
        assert len(labels) == 3

    def test_kmeans_empty_rejected(self):
        with pytest.raises(ValueError):
            KMeans(num_clusters=2).fit(np.empty((0, 2)))

    def test_cluster_dataset_partition(self, phone_trace):
        clusters = cluster_dataset(phone_trace, LTE_SPEC, num_clusters=5)
        assert sum(len(c) for c in clusters) == len(phone_trace)
        assert all(len(c) > 0 for c in clusters)
