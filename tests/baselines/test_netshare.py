"""NetShare GAN baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import NetShare, NetShareConfig, NetShareDiscriminator, NetShareGenerator
from repro.nn import Tensor
from repro.statemachine import LTE_EVENTS
from repro.tokenization import LogMinMaxScaler, StreamTokenizer


@pytest.fixture
def ns_config():
    return NetShareConfig(
        num_event_types=6, latent_dim=8, hidden_size=16, batch_generation=5,
        max_len=30, disc_hidden=32,
    )


@pytest.fixture
def tokenizer():
    tok = StreamTokenizer(LTE_EVENTS)
    tok.scaler = LogMinMaxScaler.from_bounds(0.0, 3600.0)
    return tok


class TestConfig:
    def test_max_len_must_be_multiple_of_batch_generation(self):
        with pytest.raises(ValueError, match="multiple"):
            NetShareConfig(max_len=33, batch_generation=5)

    def test_derived_properties(self, ns_config):
        assert ns_config.d_field == 9
        assert ns_config.lstm_steps == 6

    def test_vocab_mismatch_rejected(self, ns_config, rng):
        from repro.statemachine import NR_EVENTS

        tok = StreamTokenizer(NR_EVENTS)
        with pytest.raises(ValueError, match="event types"):
            NetShare(ns_config, tok, rng)


class TestGenerator:
    def test_output_shape_and_simplices(self, ns_config, rng):
        generator = NetShareGenerator(ns_config, rng)
        noise = Tensor(rng.standard_normal((4, ns_config.lstm_steps, ns_config.latent_dim)))
        out = generator(noise).data
        assert out.shape == (4, 30, 9)
        np.testing.assert_allclose(out[:, :, :6].sum(axis=2), 1.0, rtol=1e-9)
        np.testing.assert_allclose(out[:, :, 7:].sum(axis=2), 1.0, rtol=1e-9)
        assert np.all((out[:, :, 6] >= 0) & (out[:, :, 6] <= 1))

    def test_discriminator_scalar_logits(self, ns_config, rng):
        disc = NetShareDiscriminator(ns_config, rng)
        sequences = Tensor(rng.random((3, 30, 9)))
        assert disc(sequences).shape == (3,)


class TestTrainingAndSampling:
    def test_adversarial_training_runs(self, ns_config, tokenizer, phone_trace):
        model = NetShare(ns_config, tokenizer, np.random.default_rng(0))
        result = model.train(phone_trace.truncate_streams(30), epochs=2, batch_size=16)
        assert len(result.generator_losses) == 2
        assert len(result.discriminator_losses) == 2
        assert result.wall_time_seconds > 0
        assert all(np.isfinite(v) for v in result.generator_losses)

    def test_training_updates_both_players(self, ns_config, tokenizer, phone_trace):
        model = NetShare(ns_config, tokenizer, np.random.default_rng(0))
        gen_before = {k: v.copy() for k, v in model.generator.state_dict().items()}
        disc_before = {k: v.copy() for k, v in model.discriminator.state_dict().items()}
        model.train(phone_trace.truncate_streams(30), epochs=1, batch_size=16)
        assert any(
            not np.array_equal(model.generator.state_dict()[k], gen_before[k])
            for k in gen_before
        )
        assert any(
            not np.array_equal(model.discriminator.state_dict()[k], disc_before[k])
            for k in disc_before
        )

    def test_generation_count_and_schema(self, ns_config, tokenizer, phone_trace, rng):
        model = NetShare(ns_config, tokenizer, np.random.default_rng(0))
        model.train(phone_trace.truncate_streams(30), epochs=1, batch_size=16)
        trace = model.generate(12, rng, "phone", start_time=100.0)
        assert len(trace) == 12
        for stream in trace:
            assert 1 <= len(stream) <= ns_config.max_len
            assert stream.device_type == "phone"
            stream.validate()
            assert stream.timestamps()[0] >= 100.0

    def test_generation_truncates_at_stop(self, ns_config, tokenizer, phone_trace, rng):
        model = NetShare(ns_config, tokenizer, np.random.default_rng(0))
        model.train(phone_trace.truncate_streams(30), epochs=1, batch_size=16)
        trace = model.generate(20, rng, "phone")
        for stream in trace:
            # length < max_len implies a stop flag fired at the last event;
            # we can't see flags here, but no stream may exceed max_len.
            assert len(stream) <= ns_config.max_len

    def test_no_trainable_streams_rejected(self, ns_config, tokenizer):
        from repro.trace import Stream, TraceDataset

        singletons = TraceDataset(
            streams=[Stream.from_arrays("a", "phone", [0.0], ["SRV_REQ"])]
        )
        model = NetShare(ns_config, tokenizer, np.random.default_rng(0))
        with pytest.raises(ValueError, match="no trainable streams"):
            model.train(singletons, epochs=1)
