"""Deeper NetShare behaviors: batch generation, state dict, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import NetShare, NetShareConfig, NetShareGenerator
from repro.nn import Tensor
from repro.statemachine import LTE_EVENTS
from repro.tokenization import LogMinMaxScaler, StreamTokenizer


@pytest.fixture
def tokenizer():
    tok = StreamTokenizer(LTE_EVENTS)
    tok.scaler = LogMinMaxScaler.from_bounds(0.0, 3600.0)
    return tok


class TestBatchGeneration:
    def test_lstm_steps_scale_inversely_with_batch_generation(self):
        """The paper's L4 mechanism: larger S means fewer LSTM passes."""
        few = NetShareConfig(max_len=60, batch_generation=2)
        many = NetShareConfig(max_len=60, batch_generation=10)
        assert few.lstm_steps == 30
        assert many.lstm_steps == 6

    def test_samples_within_one_step_share_hidden_state(self, rng):
        """Batch generation emits S samples from ONE hidden state.

        Consequence (the paper's intra-batch dependency loss): changing
        noise at step k changes all S samples of that step together, and
        no samples of earlier steps.
        """
        config = NetShareConfig(
            num_event_types=6, latent_dim=4, hidden_size=8, batch_generation=5,
            max_len=20,
        )
        generator = NetShareGenerator(config, rng)
        noise = rng.standard_normal((1, config.lstm_steps, config.latent_dim))
        from repro.nn import no_grad

        with no_grad():
            base = generator(Tensor(noise)).data.copy()
            perturbed = noise.copy()
            perturbed[0, 2] += 5.0  # third LSTM step => samples 10..14
            out = generator(Tensor(perturbed)).data
        np.testing.assert_allclose(out[0, :10], base[0, :10], atol=1e-10)
        assert not np.allclose(out[0, 10:15], base[0, 10:15])


class TestDeterminismAndState:
    def test_generation_deterministic_given_rng(self, tokenizer):
        config = NetShareConfig(
            num_event_types=6, latent_dim=4, hidden_size=8, batch_generation=5,
            max_len=20,
        )
        model = NetShare(config, tokenizer, np.random.default_rng(3))
        a = model.generate(5, np.random.default_rng(9), "phone")
        b = model.generate(5, np.random.default_rng(9), "phone")
        for s1, s2 in zip(a, b):
            assert s1.event_names() == s2.event_names()
            np.testing.assert_allclose(s1.timestamps(), s2.timestamps())

    def test_generator_discriminator_state_dicts_roundtrip(self, tokenizer, rng):
        config = NetShareConfig(
            num_event_types=6, latent_dim=4, hidden_size=8, batch_generation=5,
            max_len=20,
        )
        model = NetShare(config, tokenizer, np.random.default_rng(0))
        clone = NetShare(config, tokenizer, np.random.default_rng(99))
        clone.generator.load_state_dict(model.generator.state_dict())
        noise = model._noise(3, np.random.default_rng(5))
        from repro.nn import no_grad

        with no_grad():
            np.testing.assert_allclose(
                model.generator(noise).data, clone.generator(noise).data
            )
