"""EventRing bounds and watermark hysteresis."""

from __future__ import annotations

import pytest

from repro.service import EventRing


class TestBounds:
    def test_fifo_order(self):
        ring = EventRing(4)
        for i in range(3):
            assert ring.push(i)
        assert [ring.pop(), ring.pop(), ring.pop()] == [0, 1, 2]
        assert ring.pop() is None

    def test_push_rejected_when_full(self):
        ring = EventRing(2)
        assert ring.push("a") and ring.push("b")
        assert ring.full
        assert not ring.push("c")
        assert len(ring) == 2
        assert ring.space == 0

    def test_peek_does_not_consume(self):
        ring = EventRing(2)
        ring.push("x")
        assert ring.peek() == "x"
        assert len(ring) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EventRing(0)
        with pytest.raises(ValueError):
            EventRing(10, high_watermark=1.5)
        with pytest.raises(ValueError):
            EventRing(10, high_watermark=0.5, low_watermark=0.5)


class TestWatermarks:
    def test_hysteresis_latches(self):
        ring = EventRing(10, high_watermark=0.8, low_watermark=0.2)
        for i in range(7):
            ring.push(i)
        assert not ring.throttled  # below high
        ring.push(7)
        assert ring.throttled  # reached high (8)
        ring.pop()
        # Between low and high: still throttled (the latch).
        assert ring.throttled
        while len(ring) > 3:
            ring.pop()
        assert ring.throttled  # still above low
        ring.pop()
        assert not ring.throttled  # drained to low (2)

    def test_rethrottles_after_release(self):
        ring = EventRing(4, high_watermark=0.75, low_watermark=0.25)
        for i in range(3):
            ring.push(i)
        assert ring.throttled
        while len(ring) > 1:
            ring.pop()
        assert not ring.throttled
        ring.push("x")
        ring.push("y")
        assert ring.throttled
