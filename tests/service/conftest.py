"""Shared fixtures for the always-on service tests: a tiny population."""

from __future__ import annotations

import pytest

from repro.api.scenario import ScenarioSpec
from repro.workload import Cohort, UEPopulation, Workload


@pytest.fixture(scope="session")
def tiny_population() -> UEPopulation:
    return UEPopulation(
        name="svc-tiny",
        cohorts=(
            Cohort(
                name="base",
                scenario=ScenarioSpec(name="svc-base", num_ues=40, seed=1),
                num_ues=10,
            ),
            Cohort(
                name="surge",
                scenario=ScenarioSpec(name="svc-surge", num_ues=40, seed=2),
                num_ues=6,
            ),
        ),
    )


def _make_engine(population: UEPopulation, **overrides) -> Workload:
    options = dict(seed=7, shard_ues=4)
    options.update(overrides)
    return Workload(population, **options)


@pytest.fixture(scope="session")
def make_engine():
    """Factory building the canonical tiny workload engine."""
    return _make_engine


@pytest.fixture(scope="session")
def batch_events(tiny_population):
    """The batch-merged timeline every service path must reproduce."""
    return list(_make_engine(tiny_population).events())
