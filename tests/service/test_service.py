"""TrafficService end-to-end: parity, degradation, controls, loop mode.

Everything here runs with inline producers (``num_workers=0``) and an
injected fake clock, so the tests are deterministic and fast; the
forked paths are covered in ``test_supervisor.py`` and the CI soak job.
"""

from __future__ import annotations

import pytest

from repro.service import (
    DegradationPolicy,
    FaultPlan,
    StallConsumer,
    TrafficService,
)


class FakeTime:
    """A clock that only advances when the service sleeps."""

    def __init__(self) -> None:
        self.now = 0.0

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def _service(engine, **options):
    fake = FakeTime()
    options.setdefault("num_workers", 0)
    options.setdefault("speed", float("inf"))
    service = TrafficService(
        engine, clock=fake.clock, sleep=fake.sleep, **options
    )
    return service, fake


class TestParity:
    def test_full_run_matches_batch_timeline(
        self, tiny_population, make_engine, batch_events
    ):
        delivered = []
        service, _ = _service(
            make_engine(tiny_population),
            chunk_events=32,
            sink=delivered.append,
        )
        report = service.run()
        assert delivered == batch_events
        assert report.status.state == "done"
        assert report.status.merged_total == len(batch_events)
        assert report.status.delivered == len(batch_events)
        assert report.status.shed_total == 0
        assert report.status.accounted
        assert report.clean

    def test_max_events_stops_early(self, tiny_population, make_engine):
        delivered = []
        service, _ = _service(
            make_engine(tiny_population), sink=delivered.append
        )
        report = service.run(max_events=10)
        assert report.status.state == "stopped"
        assert len(delivered) >= 10
        assert report.status.accounted


class TestDegradation:
    def test_stall_sheds_with_exact_accounting(
        self, tiny_population, make_engine, batch_events
    ):
        delivered = []
        service, _ = _service(
            make_engine(tiny_population),
            chunk_events=8,
            ring_events=32,
            sink=delivered.append,
            degradation=DegradationPolicy(degrade_after=0.2),
            faults=FaultPlan(
                faults=(StallConsumer(at=0.0, duration=1e9),)
            ),
        )
        report = service.run(duration=30.0)
        status = report.status
        # The consumer never ran: everything that left the ring was shed.
        assert delivered == []
        assert status.shed_total > 0
        assert status.shed_episodes >= 1
        assert sum(status.shed_by_cohort.values()) == status.shed_total
        assert status.merged_total == (
            status.delivered + status.shed_total + status.pending
        )

    def test_recovery_restores_all_cohorts(self, tiny_population, make_engine):
        delivered = []
        service, _ = _service(
            make_engine(tiny_population),
            chunk_events=8,
            ring_events=32,
            sink=delivered.append,
            degradation=DegradationPolicy(degrade_after=0.2),
            faults=FaultPlan(faults=(StallConsumer(at=0.0, duration=2.0),)),
        )
        report = service.run(duration=60.0)
        status = report.status
        # Stall ended: the service drained, recovered, and finished.
        assert status.degradation_level == 0
        assert status.shed_cohorts == ()
        assert delivered  # post-recovery delivery resumed
        assert status.shed_total > 0
        assert status.accounted

    def test_accounting_violation_raises(self, tiny_population, make_engine):
        service, _ = _service(make_engine(tiny_population))
        service.run(max_events=5)
        service.delivered += 1  # corrupt the books
        with pytest.raises(RuntimeError, match="accounting"):
            service.status()


class TestControls:
    def test_retarget_rejects_nonpositive(self, tiny_population, make_engine):
        service, _ = _service(make_engine(tiny_population))
        with pytest.raises(ValueError):
            service.retarget(0)
        with pytest.raises(ValueError):
            TrafficService(make_engine(tiny_population), speed=-1.0)

    def test_pause_resume_retarget_stop_via_status_hook(
        self, tiny_population, make_engine
    ):
        service, _ = _service(make_engine(tiny_population), speed=1e9)
        seen = []

        def control(snapshot):
            seen.append(snapshot)
            if len(seen) == 1:
                service.pause()
                service.retarget(2e9)
            elif len(seen) == 2:
                assert snapshot.delivered == seen[0].delivered  # paused
                service.resume()
            elif len(seen) == 3:
                service.stop()

        report = service.run(status_every=0.1, on_status=control)
        assert service.speed == 2e9
        assert report.status.state in ("stopped", "done")
        assert report.status.accounted

    def test_backward_clock_jump_is_absorbed(
        self, tiny_population, make_engine
    ):
        service, fake = _service(make_engine(tiny_population), speed=1e9)

        def jolt(snapshot):
            if service.clock_jumps == 0:
                fake.now -= 5.0  # NTP-style step back
            else:
                service.stop()

        report = service.run(status_every=0.0, on_status=jolt)
        assert report.status.clock_jumps >= 1
        assert report.status.accounted


class TestLoopMode:
    def test_cycles_are_shifted_and_tagged(
        self, tiny_population, make_engine, batch_events
    ):
        delivered = []
        service, _ = _service(
            make_engine(tiny_population),
            loop=True,
            sink=delivered.append,
        )
        n = len(batch_events)
        report = service.run(max_events=2 * n)
        assert len(delivered) >= 2 * n
        assert delivered[:n] == batch_events
        second = delivered[n : 2 * n]
        span = batch_events[-1].timestamp - batch_events[0].timestamp
        for original, replay in zip(batch_events, second):
            assert replay.ue_id == f"{original.ue_id}#c1"
            assert replay.event == original.event
            assert replay.timestamp == pytest.approx(
                original.timestamp + span + 1e-3
            )
        assert service.cycle >= 1
        assert report.status.accounted

    def test_non_loop_run_finishes(self, tiny_population, make_engine):
        service, _ = _service(make_engine(tiny_population))
        report = service.run()
        assert report.status.state == "done"
        assert service.cycle == 0


class TestTelemetry:
    def test_status_snapshots_and_json(self, tiny_population, make_engine):
        import json

        service, _ = _service(make_engine(tiny_population), speed=1e9)
        report = service.run(status_every=0.1)
        assert report.statuses, "final snapshot always present"
        final = report.statuses[-1]
        parsed = json.loads(final.to_json_line())
        assert parsed["delivered"] == final.delivered
        assert "accounted" in parsed
        assert isinstance(final.summary(), str)

    def test_status_before_run_is_safe(self, tiny_population, make_engine):
        service, _ = _service(make_engine(tiny_population))
        status = service.status(state="idle")
        assert status.elapsed == 0.0
        assert status.merged_total == 0
        assert status.accounted
