"""DegradationPolicy resolution, controller escalation, shed accounting."""

from __future__ import annotations

import pytest

from repro.service import DegradationPolicy, ShedAccount
from repro.service.degradation import DegradationController

COHORTS = ("phones", "tablets", "cars")


class TestPolicy:
    def test_order_appends_unlisted_cohorts_in_population_order(self):
        policy = DegradationPolicy(shed_order=("cars",))
        assert policy.resolve_order(COHORTS) == ("cars", "phones", "tablets")

    def test_empty_order_defaults_to_population_order(self):
        assert DegradationPolicy().resolve_order(COHORTS) == COHORTS

    def test_unknown_cohort_rejected(self):
        policy = DegradationPolicy(shed_order=("iot",))
        with pytest.raises(ValueError, match="iot"):
            policy.resolve_order(COHORTS)


class TestController:
    def _controller(self, patience=1.0, order=("cars",)):
        return DegradationController(
            DegradationPolicy(degrade_after=patience, shed_order=order),
            COHORTS,
        )

    def test_not_throttled_sheds_nothing(self):
        controller = self._controller()
        assert controller.update(False, 0.0) == frozenset()
        assert controller.level == 0

    def test_escalates_one_cohort_per_elapsed_patience(self):
        controller = self._controller(patience=1.0)
        assert controller.update(True, 0.0) == frozenset()  # deadline armed
        assert controller.update(True, 0.5) == frozenset()  # not yet
        assert controller.update(True, 1.0) == {"cars"}
        assert controller.update(True, 1.5) == {"cars"}
        assert controller.update(True, 2.0) == {"cars", "phones"}
        assert controller.update(True, 3.0) == {"cars", "phones", "tablets"}
        # Fully escalated: stays put.
        assert controller.update(True, 99.0) == frozenset(COHORTS)

    def test_recovery_is_total_and_immediate(self):
        controller = self._controller(patience=1.0)
        controller.update(True, 0.0)
        controller.update(True, 2.0)
        assert controller.level >= 1
        assert controller.update(False, 2.1) == frozenset()
        assert controller.level == 0
        # Re-throttle re-arms the deadline from scratch.
        assert controller.update(True, 3.0) == frozenset()
        assert controller.update(True, 4.0) == {"cars"}

    def test_infinite_patience_never_sheds(self):
        controller = self._controller(patience=float("inf"))
        for t in (0.0, 10.0, 1e6):
            assert controller.update(True, t) == frozenset()


class TestShedAccount:
    def test_exact_per_cohort_counts(self):
        account = ShedAccount()
        for cohort in ("a", "b", "a", "a"):
            account.record(cohort)
        assert account.total == 3 + 1
        assert account.by_cohort == {"a": 3, "b": 1}
        assert account.as_dict()["by_cohort"] == {"a": 3, "b": 1}

    def test_episodes_count_level_transitions(self):
        account = ShedAccount()
        for level in (0, 0, 1, 2, 2, 0, 0, 1, 0):
            account.note_level(level)
        assert account.episodes == 2
