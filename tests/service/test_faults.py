"""FaultPlan parsing and scheduling."""

from __future__ import annotations

import pytest

from repro.service import BurstScale, FaultPlan, KillWorker, StallConsumer


class TestParsing:
    def test_kill_worker_spec(self):
        fault = KillWorker.parse("2@5.5")
        assert fault == KillWorker(at=5.5, worker=2)

    def test_stall_consumer_spec(self):
        fault = StallConsumer.parse("3:1.5")
        assert fault == StallConsumer(at=3.0, duration=1.5)

    def test_burst_spec(self):
        fault = BurstScale.parse("10:4:3")
        assert fault == BurstScale(at=10.0, factor=4.0, duration=3.0)

    @pytest.mark.parametrize(
        "cls, spec",
        [
            (KillWorker, "5.0"),
            (KillWorker, "x@y"),
            (StallConsumer, "5"),
            (StallConsumer, "a:b"),
            (BurstScale, "10:4"),
            (BurstScale, "a:b:c"),
        ],
    )
    def test_bad_specs_rejected(self, cls, spec):
        with pytest.raises(ValueError):
            cls.parse(spec)

    def test_plan_parse_combines_all_kinds(self):
        plan = FaultPlan.parse(
            kill_worker=["0@1"],
            stall_consumer=["2:0.5"],
            burst=["3:2:1"],
        )
        assert len(plan.faults) == 3
        assert bool(plan)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert not FaultPlan.parse()


class TestScheduling:
    def test_faults_sorted_by_time(self):
        plan = FaultPlan(
            faults=(
                StallConsumer(at=5.0, duration=1.0),
                KillWorker(at=1.0, worker=0),
            )
        )
        assert [fault.at for fault in plan.faults] == [1.0, 5.0]

    def test_pop_due_fires_each_fault_once(self):
        kill = KillWorker(at=1.0, worker=0)
        stall = StallConsumer(at=2.0, duration=1.0)
        plan = FaultPlan(faults=(kill, stall))
        assert plan.pop_due(0.5) == []
        assert plan.pop_due(1.5) == [kill]
        assert plan.pop_due(1.5) == []  # already fired
        assert plan.pop_due(10.0) == [stall]
        assert plan.pop_due(10.0) == []

    def test_slow_tick_fires_in_schedule_order(self):
        first = KillWorker(at=1.0, worker=0)
        second = BurstScale(at=2.0, factor=2.0, duration=1.0)
        plan = FaultPlan(faults=(second, first))
        assert plan.pop_due(100.0) == [first, second]
