"""ServiceStatus schema v2 and the metrics snapshot riding on it."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.service import (
    DegradationPolicy,
    FaultPlan,
    StallConsumer,
    TrafficService,
)
from repro.service.status import STATUS_SCHEMA_VERSION, ServiceStatus


class _FakeTime:
    """A clock that only advances when the service sleeps."""

    def __init__(self) -> None:
        self.now = 0.0

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def _service(engine, **options):
    fake = _FakeTime()
    options.setdefault("num_workers", 0)
    options.setdefault("speed", float("inf"))
    service = TrafficService(
        engine, clock=fake.clock, sleep=fake.sleep, **options
    )
    return service, fake


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()


class TestStatusSchema:
    def test_schema_version_in_every_line(self, tiny_population, make_engine):
        service, _ = _service(make_engine(tiny_population))
        report = service.run()
        status = report.status
        assert status.schema_version == STATUS_SCHEMA_VERSION == (
            "repro/service-status/v2"
        )
        line = json.loads(status.to_json_line())
        assert line["schema_version"] == STATUS_SCHEMA_VERSION

    def test_metrics_none_when_disabled(self, tiny_population, make_engine):
        service, _ = _service(make_engine(tiny_population))
        report = service.run()
        assert report.status.metrics is None
        assert json.loads(report.status.to_json_line())["metrics"] is None

    def test_typed_defaults(self):
        status = ServiceStatus(
            state="idle", elapsed=0.0, merged_total=0, delivered=0,
            shed_total=0, pending=0, buffered=0, events_per_second=0.0,
            speed=1.0, degradation_level=0,
        )
        assert status.shed_cohorts == ()
        assert status.shed_by_cohort == {}
        assert status.shard_cursors == ()
        assert status.workers == []
        assert status.incidents == []
        assert status.gate is None
        assert status.metrics is None


class TestStatusMetrics:
    def test_snapshot_carries_stage_and_pace_keys(
        self, tiny_population, make_engine
    ):
        obs.enable()
        service, _ = _service(make_engine(tiny_population))
        report = service.run()
        metrics = report.status.metrics
        assert metrics is not None
        # pace counters are pre-created so soak consumers can rely on
        # the keys even in an inf-speed run with zero slippage
        for key in ("pace.slipped_events", "pace.slipped_seconds",
                    "pace.clock_jumps"):
            assert metrics[key]["value"] == 0
        for key in ("merge.buffered", "ring.depth", "ring.shed_total",
                    "service.delivered", "service.merged_total"):
            assert key in metrics
        assert metrics["service.delivered"]["value"] == report.status.delivered
        # span aggregates from the run loop travel with the snapshot
        assert metrics["ring.consume"]["kind"] == "span"
        assert metrics["ring.consume"]["events"] == report.status.delivered
        assert metrics["merge.pump"]["kind"] == "span"

    def test_shed_metrics_match_status(self, tiny_population, make_engine):
        obs.enable()
        service, _ = _service(
            make_engine(tiny_population),
            chunk_events=8,
            ring_events=32,
            degradation=DegradationPolicy(degrade_after=0.2),
            faults=FaultPlan(faults=(StallConsumer(at=0.0, duration=1e9),)),
        )
        report = service.run(duration=30.0)
        status = report.status
        assert status.shed_total > 0
        metrics = status.metrics
        assert metrics["ring.shed_total"]["value"] == status.shed_total
        assert metrics["ring.shed_episodes"]["value"] == status.shed_episodes
        for cohort, count in status.shed_by_cohort.items():
            assert metrics[f"ring.shed_events{{cohort={cohort}}}"]["value"] == count

    def test_gate_observe_span_flushed(self, tiny_population, make_engine):
        from repro.validate import RollingGate

        obs.enable()
        gate = RollingGate(tiny_population, seed=7)
        service, _ = _service(make_engine(tiny_population), gate=gate)
        report = service.run()
        metrics = report.status.metrics
        assert metrics["gate.observe"]["kind"] == "span"
        assert metrics["gate.observe"]["events"] == report.status.delivered

    def test_json_line_round_trips_metrics(self, tiny_population, make_engine):
        obs.enable()
        service, _ = _service(make_engine(tiny_population))
        report = service.run()
        line = json.loads(report.status.to_json_line())
        assert line["metrics"]["service.delivered"]["value"] == line["delivered"]
