"""ShardSupervisor: parity, crash restart from cursors, inline fallback."""

from __future__ import annotations

import time

import pytest

from repro.core.sharding import fork_available
from repro.service import ShardSupervisor

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires os.fork"
)


def _drain(supervisor, *, kill_at=None, kill_worker=0, deadline=120.0):
    """Pump a supervisor to exhaustion, optionally killing a worker
    once ``kill_at`` events have been merged."""
    out = []
    start = time.monotonic()
    supervisor.start()
    killed = False
    incidents = []
    while not supervisor.exhausted():
        assert time.monotonic() - start < deadline, "supervisor drain hung"
        supervisor.pump()
        out.extend(supervisor.merger.pop_ready())
        if (
            kill_at is not None
            and not killed
            and supervisor.merger.merged_total >= kill_at
        ):
            supervisor.kill_worker(kill_worker)
            killed = True
        incidents.extend(supervisor.maintain())
        time.sleep(0.002)
    out.extend(supervisor.merger.pop_ready())
    return out, incidents


class TestInline:
    def test_inline_parity(self, tiny_population, make_engine, batch_events):
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=0, chunk_events=32
        )
        assert supervisor.inline
        out, incidents = _drain(supervisor)
        assert out == batch_events
        assert incidents == []

    def test_inline_kill_restarts_from_cursor(
        self, tiny_population, make_engine, batch_events
    ):
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=0, chunk_events=16
        )
        out, incidents = _drain(supervisor, kill_at=len(batch_events) // 3)
        assert out == batch_events
        assert any("restarting from cursors" in line for line in incidents)
        assert sum(supervisor.restarts) >= 1


@needs_fork
class TestForked:
    def test_forked_parity(self, tiny_population, make_engine, batch_events):
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=2, chunk_events=32
        )
        assert not supervisor.inline
        out, _ = _drain(supervisor)
        assert out == batch_events

    def test_kill_midstream_is_bit_identical(
        self, tiny_population, make_engine, batch_events
    ):
        # Satellite 3: SIGKILL a shard worker mid-generation; the
        # restarted worker resumes from the merger's cursors and the
        # merged timeline is exactly the batch timeline.
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=2, chunk_events=16
        )
        out, incidents = _drain(supervisor, kill_at=len(batch_events) // 4)
        assert out == batch_events
        assert supervisor.restarts[0] >= 1
        assert any("worker 0 restarting" in line for line in incidents)

    def test_inline_fallback_after_max_restarts(
        self, tiny_population, make_engine, batch_events
    ):
        supervisor = ShardSupervisor(
            make_engine(tiny_population),
            num_workers=2,
            chunk_events=16,
            max_restarts=0,
        )
        out, incidents = _drain(supervisor, kill_at=len(batch_events) // 4)
        assert out == batch_events
        assert supervisor.inline_fallbacks >= 1
        assert any("falling back to inline" in line for line in incidents)


class TestTopology:
    def test_shard_assignment_is_modular(self, tiny_population, make_engine):
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=2
        )
        owned = [supervisor.shards_of(w) for w in range(supervisor.num_workers)]
        flat = sorted(shard for shards in owned for shard in shards)
        assert flat == list(range(supervisor.num_shards))

    def test_workers_capped_at_shard_count(self, tiny_population, make_engine):
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=64
        )
        assert supervisor.num_workers <= supervisor.num_shards

    def test_worker_status_shape(self, tiny_population, make_engine):
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=0
        )
        supervisor.start()
        try:
            status = supervisor.worker_status()
            assert len(status) == supervisor.num_workers
            assert all("restarts" in entry for entry in status)
        finally:
            supervisor.shutdown()

    def test_kill_out_of_range_raises(self, tiny_population, make_engine):
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=0
        )
        with pytest.raises(IndexError):
            supervisor.kill_worker(99)
