"""The chunk-native service path: columnar delivery, restarts, ring pins.

``test_service.py`` drives the service in sink mode (per-event object
delivery); this file pins the columnar path the hot loop actually runs
when no sink is attached — chunks flow merger → ring → simulator with
no per-event decode — plus the EventRing regressions that rode along
(event-count depth, ``throttled`` as a pure read).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sharding import fork_available
from repro.mcn import MCNSimulator
from repro.service import (
    DegradationPolicy,
    EventRing,
    FaultPlan,
    ShardSupervisor,
    StallConsumer,
    TrafficService,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires os.fork"
)


class FakeTime:
    def __init__(self) -> None:
        self.now = 0.0

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def _service(engine, **options):
    fake = FakeTime()
    options.setdefault("num_workers", 0)
    options.setdefault("speed", float("inf"))
    service = TrafficService(
        engine, clock=fake.clock, sleep=fake.sleep, **options
    )
    return service, fake


def _drain_chunks(supervisor, *, kill_at=None, deadline=120.0):
    """Pump a supervisor to exhaustion via the columnar emission path."""
    import time

    out = []
    start = time.monotonic()
    supervisor.start()
    killed = False
    while not supervisor.exhausted():
        assert time.monotonic() - start < deadline, "supervisor drain hung"
        supervisor.pump()
        out.extend(supervisor.merger.pop_ready_chunks())
        if (
            kill_at is not None
            and not killed
            and supervisor.merger.merged_total >= kill_at
        ):
            supervisor.kill_worker(0)
            killed = True
        supervisor.maintain()
        time.sleep(0.002)
    out.extend(supervisor.merger.pop_ready_chunks())
    return out


def _decoded(chunks):
    return [event for chunk in chunks for event in chunk.decode()]


class TestColumnarSupervisor:
    def test_inline_chunk_drain_is_bit_identical(
        self, tiny_population, make_engine, batch_events
    ):
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=0, chunk_events=32
        )
        chunks = _drain_chunks(supervisor)
        assert _decoded(chunks) == batch_events

    @needs_fork
    def test_sigkill_restart_chunked_is_bit_identical(
        self, tiny_population, make_engine, batch_events
    ):
        # SIGKILL a forked shard worker mid-generation; the restarted
        # worker resumes from the merger's cursors and the *columnar*
        # merged timeline is exactly the batch timeline.
        supervisor = ShardSupervisor(
            make_engine(tiny_population), num_workers=2, chunk_events=16
        )
        chunks = _drain_chunks(
            supervisor, kill_at=len(batch_events) // 4
        )
        assert _decoded(chunks) == batch_events
        assert sum(supervisor.restarts) >= 1


class TestChunkNativeService:
    def test_simulation_matches_batch_chunks(
        self, tiny_population, make_engine, batch_events
    ):
        # No sink: chunks flow straight into the simulator.  The report
        # must be bit-identical to the batch chunk path — the merged
        # order (and hence the RNG draw order) is the same sequence.
        reference = make_engine(tiny_population).simulate(sim_seed=3)
        service, _ = _service(
            make_engine(tiny_population),
            chunk_events=32,
            simulator=MCNSimulator(
                workers=4,
                cost_model=tiny_population.cost_model,
                seed=3,
            ),
        )
        report = service.run()
        assert report.status.state == "done"
        assert report.status.delivered == len(batch_events)
        assert report.status.accounted
        simulation = report.simulation
        assert simulation.num_events == reference.num_events
        assert simulation.dropped_events == reference.dropped_events
        assert (
            simulation.peak_connected_contexts
            == reference.peak_connected_contexts
        )
        assert set(simulation.latencies_ms) == set(reference.latencies_ms)
        for name, latencies in reference.latencies_ms.items():
            np.testing.assert_array_equal(
                simulation.latencies_ms[name], latencies
            )

    def test_chunked_shedding_keeps_exact_accounting(
        self, tiny_population, make_engine
    ):
        # Columnar shed sweep: a stalled consumer sheds whole/partial
        # chunks; conservation must hold without any event decode.
        service, _ = _service(
            make_engine(tiny_population),
            chunk_events=8,
            ring_events=32,
            degradation=DegradationPolicy(degrade_after=0.2),
            faults=FaultPlan(
                faults=(StallConsumer(at=0.0, duration=1e9),)
            ),
        )
        report = service.run(duration=30.0)
        status = report.status
        assert status.delivered == 0
        assert status.shed_total > 0
        assert sum(status.shed_by_cohort.values()) == status.shed_total
        assert status.merged_total == (
            status.delivered + status.shed_total + status.pending
        )

    def test_chunked_run_without_consumers_still_accounts(
        self, tiny_population, make_engine, batch_events
    ):
        service, _ = _service(make_engine(tiny_population), chunk_events=64)
        report = service.run()
        assert report.status.state == "done"
        assert report.status.delivered == len(batch_events)
        assert report.status.accounted


class TestRingEventAccounting:
    def test_entries_account_in_events_not_items(self):
        ring = EventRing(10)
        assert ring.push("chunk-a", 6)
        assert len(ring) == 6
        assert ring.space == 4
        assert not ring.push("chunk-b", 5)  # would exceed capacity
        assert ring.push("chunk-b", 4)
        assert ring.full
        assert ring.pop() == "chunk-a"
        assert len(ring) == 4

    def test_replace_head_releases_consumed_events(self):
        ring = EventRing(10)
        ring.push("head", 8)
        ring.replace_head("head-rest", consumed=5)
        assert len(ring) == 3
        assert ring.peek() == "head-rest"
        assert ring.pop() == "head-rest"
        assert len(ring) == 0

    def test_replace_head_on_empty_raises(self):
        with pytest.raises(IndexError):
            EventRing(4).replace_head("x", consumed=1)


class TestThrottledPurity:
    def test_throttled_is_a_pure_read(self):
        # Polling the latch (status snapshots, metrics gauges) must not
        # move the hysteresis edge or mint episodes.
        ring = EventRing(10, high_watermark=0.8, low_watermark=0.2)
        for i in range(7):
            ring.push(i)
        for _ in range(50):
            assert not ring.throttled
        assert ring.throttle_episodes == 0
        ring.push(7)  # depth 8 = high mark
        for _ in range(50):
            assert ring.throttled
        assert ring.throttle_episodes == 1

    def test_latch_moves_only_where_depth_changes(self):
        ring = EventRing(10, high_watermark=0.8, low_watermark=0.2)
        ring.push("chunk", 8)
        assert ring.throttled
        assert ring.throttle_episodes == 1
        # Partial drain through replace_head releases the latch once
        # depth reaches the low mark — a single latch update, no flap.
        ring.replace_head("rest", consumed=6)
        assert not ring.throttled
        assert ring.throttle_episodes == 1
        ring.push("more", 6)  # depth 8 again: a genuine second episode
        assert ring.throttled
        assert ring.throttle_episodes == 2
