"""ChunkMerger: batch-merge parity, cursor contract, emission safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import ChunkMerger
from repro.service.merge import SHARD_DONE
from repro.workload import TimelineEvent, merge_timelines
from repro.workload.timeline import TimelineChunk, chunk_buffer


_KEY = lambda e: (e.timestamp, e.cohort, e.ue_id)  # noqa: E731


def _chunks_of(engine, shard, chunk_events, start_seq=0):
    return list(
        engine.shard_chunk_stream(
            shard, chunk_events=chunk_events, start_seq=start_seq
        )
    )


def _drain(merger):
    return list(merger.pop_ready())


def _merge_all(engine, chunk_events, order):
    """Feed every shard's chunks in ``order`` (round-robin interleave)."""
    merger = ChunkMerger(engine.num_shards)
    streams = {
        shard: _chunks_of(engine, shard, chunk_events)
        for shard in range(engine.num_shards)
    }
    out = []
    for shard in order:
        if streams[shard]:
            merger.add_chunk(streams[shard].pop(0))
        if not streams[shard]:
            merger.finish_shard(shard)
        out.extend(_drain(merger))
    assert merger.exhausted()
    return out


class TestParity:
    def test_bit_identical_to_batch_merge(self, tiny_population, make_engine, batch_events):
        engine = make_engine(tiny_population)
        shards = engine.num_shards
        assert shards > 1
        order = []
        remaining = {
            s: len(_chunks_of(engine, s, 64)) for s in range(shards)
        }
        while any(remaining.values()):
            for s in range(shards):
                if remaining[s]:
                    order.append(s)
                    remaining[s] -= 1
        merged = _merge_all(make_engine(tiny_population), 64, order)
        assert merged == batch_events

    def test_delivery_order_does_not_matter(self, tiny_population, make_engine, batch_events):
        engine = make_engine(tiny_population)
        shards = engine.num_shards
        # Reverse shard order, all of one shard before the next.
        order = []
        for s in reversed(range(shards)):
            order.extend([s] * len(_chunks_of(engine, s, 64)))
        merged = _merge_all(make_engine(tiny_population), 64, order)
        assert merged == batch_events

    def test_chunk_size_does_not_matter(self, tiny_population, make_engine, batch_events):
        for chunk_events in (1, 7, 1000):
            engine = make_engine(tiny_population)
            order = []
            for s in range(engine.num_shards):
                order.extend([s] * len(_chunks_of(engine, s, chunk_events)))
            assert _merge_all(engine, chunk_events, order) == batch_events

    def test_tie_break_matches_heapq_merge(self):
        # Two shards with identical (timestamp, cohort, ue_id) keys:
        # ties must resolve by shard order, exactly like heapq.merge.
        def chunk(shard, seq, ue, n=1):
            return TimelineChunk(
                shard=shard,
                seq=seq,
                cohort="c",
                times=np.zeros(n),
                ue_codes=np.zeros(n, dtype=np.int32),
                event_codes=np.arange(n, dtype=np.int16),
                ue_ids=(ue,),
                event_names=tuple(f"E{shard}.{seq}.{i}" for i in range(n)),
                cells=None,
            )

        merger = ChunkMerger(2)
        merger.add_chunk(chunk(1, 0, "u", n=2))
        merger.add_chunk(chunk(0, 0, "u", n=2))
        for s in (0, 1):
            merger.finish_shard(s)
        merged = list(merger.pop_ready())
        reference = list(
            merge_timelines(
                [
                    iter(
                        [
                            TimelineEvent(0.0, "c", "u", "E0.0.0"),
                            TimelineEvent(0.0, "c", "u", "E0.0.1"),
                        ]
                    ),
                    iter(
                        [
                            TimelineEvent(0.0, "c", "u", "E1.0.0"),
                            TimelineEvent(0.0, "c", "u", "E1.0.1"),
                        ]
                    ),
                ]
            )
        )
        assert merged == reference


class TestEmissionSafety:
    def test_holds_until_every_shard_has_a_head(self, tiny_population, make_engine):
        engine = make_engine(tiny_population)
        merger = ChunkMerger(engine.num_shards)
        merger.add_chunk(_chunks_of(engine, 0, 64)[0])
        # Shard 1..n have no buffered head: nothing may be emitted yet.
        assert list(merger.pop_ready()) == []
        assert merger.buffered > 0

    def test_finished_shards_do_not_block(self, tiny_population, make_engine):
        engine = make_engine(tiny_population)
        merger = ChunkMerger(engine.num_shards)
        for shard in range(1, engine.num_shards):
            merger.finish_shard(shard)
        merger.add_chunk(_chunks_of(engine, 0, 64)[0])
        assert len(list(merger.pop_ready())) == 64

    def test_max_events_bounds_emission(self, tiny_population, make_engine):
        engine = make_engine(tiny_population)
        merger = ChunkMerger(engine.num_shards)
        for shard in range(engine.num_shards):
            for chunk in _chunks_of(engine, shard, 10_000):
                merger.add_chunk(chunk)
            merger.finish_shard(shard)
        first = list(merger.pop_ready(max_events=5))
        assert len(first) == 5
        assert merger.merged_total == 5


class TestCursorContract:
    def test_cursor_advances_per_chunk(self, tiny_population, make_engine):
        engine = make_engine(tiny_population)
        merger = ChunkMerger(engine.num_shards)
        chunks = _chunks_of(engine, 0, 16)
        assert merger.cursor(0) == 0
        merger.add_chunk(chunks[0])
        assert merger.cursor(0) == 1
        merger.finish_shard(0)
        assert merger.cursor(0) == SHARD_DONE

    def test_stale_resend_is_dropped_idempotently(self, tiny_population, make_engine):
        engine = make_engine(tiny_population)
        merger = ChunkMerger(engine.num_shards)
        chunks = _chunks_of(engine, 0, 16)
        assert merger.add_chunk(chunks[0])
        buffered = merger.buffered
        assert not merger.add_chunk(chunks[0])  # duplicate
        assert merger.buffered == buffered
        assert merger.cursor(0) == 1

    def test_gap_raises(self, tiny_population, make_engine):
        engine = make_engine(tiny_population)
        merger = ChunkMerger(engine.num_shards)
        chunks = _chunks_of(engine, 0, 16)
        assert len(chunks) >= 3
        merger.add_chunk(chunks[0])
        with pytest.raises(ValueError, match="gap"):
            merger.add_chunk(chunks[2])

    def test_resume_from_cursor_is_bit_identical(
        self, tiny_population, make_engine, batch_events
    ):
        # Deliver some chunks, "crash", regenerate from the cursors,
        # and deliver the remainder: the merged stream must be the
        # batch timeline exactly.
        engine = make_engine(tiny_population)
        merger = ChunkMerger(engine.num_shards)
        merger.add_chunk(_chunks_of(engine, 0, 8)[0])
        merger.add_chunk(_chunks_of(engine, 0, 8)[1])
        merger.add_chunk(_chunks_of(engine, 1, 8)[0])
        out = _drain(merger)
        # "Restart": a fresh engine (same identity) resumes per cursor.
        resumed = make_engine(tiny_population)
        for shard in range(resumed.num_shards):
            start = merger.cursor(shard)
            for chunk in _chunks_of(resumed, shard, 8, start_seq=start):
                merger.add_chunk(chunk)
                out.extend(_drain(merger))
            merger.finish_shard(shard)
            out.extend(_drain(merger))
        assert merger.exhausted()
        assert out == batch_events


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ChunkMerger(0)

    def test_chunk_buffer_empty_yields_one_empty_chunk(self):
        empty = np.empty(0)
        chunks = list(
            chunk_buffer(
                (empty, empty.astype(np.int32), empty.astype(np.int16), [], []),
                shard=3,
                cohort="c",
                chunk_events=10,
            )
        )
        assert len(chunks) == 1
        assert chunks[0].num_events == 0
        assert chunks[0].seq == 0
