"""Hypothesis properties: oracle/replay agreement, tokenizer round-trip."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.statemachine import LTE_EVENTS, LTE_SPEC, NR_EVENTS, NR_SPEC
from repro.statemachine.replay import replay_dataset, replay_events
from repro.tokenization import StreamTokenizer
from repro.trace.dataset import TraceDataset
from repro.trace.schema import Stream
from repro.validate import TransitionOracle

lte_stream = st.lists(st.sampled_from(list(LTE_EVENTS)), min_size=0, max_size=40)
nr_stream = st.lists(st.sampled_from(list(NR_EVENTS)), min_size=0, max_size=40)


def _as_stream(names, ue="u0"):
    return Stream.from_arrays(ue, "phone", np.arange(len(names), dtype=float), names)


# ----------------------------------------------------------------------
# Oracle vs DatasetReplay: any random event sequence agrees exactly
# ----------------------------------------------------------------------
@given(lte_stream)
@settings(max_examples=150, deadline=None)
def test_oracle_agrees_with_replay_on_any_lte_sequence(names):
    oracle = TransitionOracle.for_spec(LTE_SPEC)
    tally = oracle.replay_dataset(TraceDataset(streams=[_as_stream(names)]))
    replay = replay_events([(float(i), n) for i, n in enumerate(names)], LTE_SPEC)
    assert tally.counted_events == replay.counted_events
    assert tally.violating_events == replay.violating_events
    assert tally.bootstrapped_streams == int(replay.bootstrapped)
    assert tally.violating_streams == int(replay.has_violation)


@given(nr_stream)
@settings(max_examples=100, deadline=None)
def test_oracle_agrees_with_replay_on_any_nr_sequence(names):
    oracle = TransitionOracle.for_spec(NR_SPEC)
    tally = oracle.replay_dataset(TraceDataset(streams=[_as_stream(names)]))
    replay = replay_events([(float(i), n) for i, n in enumerate(names)], NR_SPEC)
    assert tally.counted_events == replay.counted_events
    assert tally.violating_events == replay.violating_events


@given(st.lists(lte_stream, min_size=0, max_size=8))
@settings(max_examples=60, deadline=None)
def test_oracle_dataset_rates_match_replay_dataset(streams):
    """Multi-stream aggregation: rates and patterns byte-identical."""
    dataset = TraceDataset(
        streams=[_as_stream(names, ue=f"u{i}") for i, names in enumerate(streams)],
        vocabulary=LTE_EVENTS,
    )
    oracle = TransitionOracle.for_spec(LTE_SPEC)
    tally = oracle.replay_dataset(dataset)
    replay = replay_dataset(dataset.replay_pairs(), LTE_SPEC)
    assert tally.event_violation_rate == replay.event_violation_rate
    assert tally.stream_violation_rate == replay.stream_violation_rate
    assert oracle.top_patterns(tally, 50) == replay.top_violation_patterns(50)


@given(st.lists(lte_stream, min_size=1, max_size=6), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_oracle_buffer_agrees_with_dataset_path(streams, seed):
    """The columnar shard-buffer path equals the per-stream path, even
    with streams interleaved in a single time-sorted buffer."""
    rng = np.random.default_rng(seed)
    dataset_streams = []
    rows = []  # (time, ue, local_code)
    names: list[str] = []
    local: dict[str, int] = {}
    for ue, stream_names in enumerate(streams):
        times = np.cumsum(rng.exponential(1.0, size=len(stream_names)))
        dataset_streams.append(
            Stream.from_arrays(f"u{ue}", "phone", times, stream_names)
        )
        for t, name in zip(times, stream_names):
            code = local.setdefault(name, len(local))
            if code == len(names):
                names.append(name)
            rows.append((float(t), ue, code))
    rows.sort()  # global time order interleaves the UEs
    oracle = TransitionOracle.for_spec(LTE_SPEC)
    if rows:
        times, ues, codes = (np.asarray(column) for column in zip(*rows))
    else:
        times = ues = codes = np.empty(0)
    from_buffer = oracle.validate_buffer(
        times, ues, codes, names, num_ues=len(streams)
    )
    from_dataset = oracle.replay_dataset(TraceDataset(streams=dataset_streams))
    assert from_buffer.counted_events == from_dataset.counted_events
    assert from_buffer.violating_events == from_dataset.violating_events
    assert from_buffer.violating_streams == from_dataset.violating_streams
    assert np.array_equal(from_buffer.pattern_counts, from_dataset.pattern_counts)


# ----------------------------------------------------------------------
# Tokenizer encode/decode round-trip on fuzzed streams
# ----------------------------------------------------------------------
fuzzed_stream = st.lists(
    st.tuples(
        st.sampled_from(list(LTE_EVENTS)),
        st.floats(min_value=0.01, max_value=1e5, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


@given(fuzzed_stream)
@settings(max_examples=100, deadline=None)
def test_tokenizer_round_trip_on_fuzzed_streams(samples):
    names = [name for name, _ in samples]
    deltas = np.array([delta for _, delta in samples])
    deltas[0] = 0.0
    times = np.cumsum(deltas)
    stream = Stream.from_arrays("fuzz", "phone", times, names)
    tokenizer = StreamTokenizer(LTE_EVENTS).fit(
        TraceDataset(streams=[stream], vocabulary=LTE_EVENTS)
    )
    tokens = tokenizer.encode(stream)
    fields = tokenizer.decode_fields(tokens)
    # Categorical fields survive exactly.
    assert [LTE_EVENTS.name(int(i)) for i in fields.event_indices] == names
    assert fields.stop_flags[-1] == 1
    assert not fields.stop_flags[:-1].any()
    # The full decode reproduces timestamps within scaler round-trip
    # error (log/exp plus min-max), and stays monotone.
    decoded = tokenizer.decode(tokens, "fuzz", "phone", start_time=times[0])
    recovered = decoded.timestamps()
    assert np.all(np.diff(recovered) >= 0)
    np.testing.assert_allclose(recovered, times, rtol=1e-6, atol=1e-6)


@given(fuzzed_stream, st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_tokenizer_round_trip_any_start_time(samples, start):
    names = [name for name, _ in samples]
    deltas = np.array([delta for _, delta in samples])
    deltas[0] = 0.0
    stream = Stream.from_arrays("fuzz", "phone", start + np.cumsum(deltas), names)
    tokenizer = StreamTokenizer(LTE_EVENTS).fit(
        TraceDataset(streams=[stream], vocabulary=LTE_EVENTS)
    )
    decoded = tokenizer.decode(
        tokenizer.encode(stream), "fuzz", "phone", start_time=start
    )
    assert decoded.event_names() == names
    assert len(decoded) == len(stream)
