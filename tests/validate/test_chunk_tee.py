"""Chunk-native validator tees: parity with the per-event tee they replace.

The always-on service tees merged *chunks* into the oracle and the
traffic sketch (no event objects on the hot path).  Stream keys differ
between the two modes — per-event uses ``(cohort, ue_id)`` strings,
chunk mode uses ``(cycle, global ue index)`` — but every tally and
histogram the reports are built from must come out identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.scenario import ScenarioSpec
from repro.validate import OracleValidator, StatsValidator
from repro.validate.stats import TrafficSketch
from repro.workload import Cohort, UEPopulation, Workload


def _population() -> UEPopulation:
    return UEPopulation(
        name="tee-tiny",
        cohorts=(
            Cohort(
                name="base",
                scenario=ScenarioSpec(name="tee-base", num_ues=40, seed=1),
                num_ues=8,
            ),
            Cohort(
                name="surge",
                scenario=ScenarioSpec(name="tee-surge", num_ues=40, seed=2),
                num_ues=5,
            ),
        ),
    )


@pytest.fixture(scope="module")
def chunks():
    return Workload(_population(), seed=9, shard_ues=4).chunks(
        chunk_events=64
    )


@pytest.fixture(scope="module")
def spec():
    return _population().cohorts[0].scenario.machine_spec


class TestOracleChunkTee:
    def test_matches_per_event_tee(self, chunks, spec):
        by_chunk = OracleValidator(spec)
        by_event = OracleValidator(spec)
        for chunk in chunks:
            by_chunk.observe_chunk(chunk)
            for event in chunk.decode():
                by_event.observe_event(
                    event.timestamp, (event.cohort, event.ue_id), event.event
                )
        a, b = by_chunk.report(), by_event.report()
        assert a.total_events == b.total_events
        assert a.counted_events == b.counted_events
        assert a.violating_events == b.violating_events
        assert a.streams == b.streams
        assert a.violating_streams == b.violating_streams
        assert a.bootstrapped_streams == b.bootstrapped_streams
        assert a.top_patterns == b.top_patterns

    def test_zero_violations_on_generated_timeline(self, chunks, spec):
        validator = OracleValidator(spec)
        for chunk in chunks:
            validator.observe_chunk(chunk)
        report = validator.report()
        assert report.total_events == sum(c.num_events for c in chunks)
        assert report.violating_events == 0

    def test_unknown_event_raises_on_live_stream(self, spec):
        # Pre-bootstrap unknown events are skipped uncounted (exactly
        # like observe_event); a *live* stream hitting an
        # out-of-vocabulary event must raise.
        from repro.core.chunks import MergedChunk

        fresh = Workload(_population(), seed=9, shard_ues=4).chunks()
        validator = OracleValidator(spec)
        for chunk in fresh:
            validator.observe_chunk(chunk)
        unboot = validator.oracle.unboot
        live = [
            key
            for key, state in validator._tee_states.items()
            if state != unboot
        ]
        assert live, "generated timeline bootstrapped no streams"
        tables = fresh[0].tables
        bad = MergedChunk(
            times=np.array([1e12]),
            cohorts=np.zeros(1, dtype=np.int32),
            ues=np.array([live[0][1]], dtype=np.int64),
            events=tables.event_codes(("NOT_A_REAL_EVENT",)),
            cells=None,
            tables=tables,
        )
        with pytest.raises(KeyError, match="unknown event"):
            validator.observe_chunk(bad)


class TestSketchChunkTee:
    def test_matches_per_event_tee(self, chunks):
        by_chunk = TrafficSketch(seed=0)
        by_event = TrafficSketch(seed=0)
        for chunk in chunks:
            by_chunk.observe_chunk(chunk)
            for event in chunk.decode():
                by_event.observe_event(
                    event.timestamp, (event.cohort, event.ue_id), event.event
                )
        assert by_chunk.num_events == by_event.num_events
        # Interarrival deltas accumulate as chunks arrive (including the
        # cross-chunk bridge per stream) — the histogram must be exact.
        np.testing.assert_array_equal(
            by_chunk.interarrival.counts, by_event.interarrival.counts
        )
        by_chunk.fold_tee()
        by_event.fold_tee()
        np.testing.assert_array_equal(
            by_chunk.flow_length.counts, by_event.flow_length.counts
        )

    def test_stats_validator_passthrough(self, chunks):
        validator = StatsValidator(seed=0)
        for chunk in chunks:
            validator.observe_chunk(chunk)
        report = validator.report()
        assert report.num_events == sum(c.num_events for c in chunks)
