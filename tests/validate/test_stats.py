"""Streaming sketches: histograms, reservoirs, distances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import max_y_distance
from repro.trace import SyntheticTraceConfig, generate_trace
from repro.validate import QuantizedHistogram, ReservoirSample, TrafficSketch


class TestQuantizedHistogram:
    def test_no_sample_is_dropped(self):
        hist = QuantizedHistogram.log_spaced(1.0, 100.0, bins=4)
        hist.add([0.01, 0.5, 5.0, 50.0, 1e9])
        assert hist.total == 5
        assert hist.counts[0] == 2  # underflow
        assert hist.counts[-1] == 1  # overflow

    def test_invalid_edges_rejected(self):
        with pytest.raises(ValueError):
            QuantizedHistogram(np.array([1.0]))
        with pytest.raises(ValueError):
            QuantizedHistogram(np.array([1.0, 1.0, 2.0]))
        with pytest.raises(ValueError):
            QuantizedHistogram.log_spaced(0.0, 1.0)

    def test_jsd_identical_is_zero_disjoint_is_one(self):
        a = QuantizedHistogram.log_spaced(1.0, 100.0, bins=8)
        b = QuantizedHistogram.log_spaced(1.0, 100.0, bins=8)
        a.add([2.0, 3.0, 50.0])
        b.add([2.0, 3.0, 50.0])
        assert a.jsd(b) == pytest.approx(0.0, abs=1e-12)
        disjoint = QuantizedHistogram.log_spaced(1.0, 100.0, bins=8)
        disjoint.add([0.001, 0.002])  # all in the underflow bucket
        assert a.jsd(disjoint) == pytest.approx(1.0, abs=1e-12)

    def test_ks_approximates_exact_statistic(self):
        rng = np.random.default_rng(0)
        x = rng.exponential(10.0, size=4000)
        y = rng.exponential(25.0, size=4000)
        a = QuantizedHistogram.log_spaced(1e-3, 1e4, bins=256)
        b = QuantizedHistogram.log_spaced(1e-3, 1e4, bins=256)
        a.add(x)
        b.add(y)
        assert a.ks(b) == pytest.approx(max_y_distance(x, y), abs=0.02)

    def test_incompatible_edges_rejected(self):
        a = QuantizedHistogram.log_spaced(1.0, 100.0, bins=8)
        b = QuantizedHistogram.log_spaced(1.0, 100.0, bins=16)
        with pytest.raises(ValueError):
            a.jsd(b)

    def test_merge(self):
        a = QuantizedHistogram.log_spaced(1.0, 100.0, bins=8)
        b = QuantizedHistogram.log_spaced(1.0, 100.0, bins=8)
        a.add([2.0, 3.0])
        b.add([50.0])
        assert a.merge(b).total == 3

    def test_batched_equals_single_shot(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(5.0, size=1000)
        whole = QuantizedHistogram.log_spaced()
        parts = QuantizedHistogram.log_spaced()
        whole.add(values)
        for chunk in np.array_split(values, 13):
            parts.add(chunk)
        assert np.array_equal(whole.counts, parts.counts)


class TestReservoirSample:
    def test_under_capacity_is_exact(self):
        sample = ReservoirSample(capacity=100, seed=0)
        sample.add([1.0, 2.0, 3.0])
        assert sorted(sample.values()) == [1.0, 2.0, 3.0]

    def test_capacity_bound_holds(self):
        sample = ReservoirSample(capacity=64, seed=0)
        sample.add(np.arange(10_000, dtype=np.float64))
        assert sample.values().size == 64
        assert sample.seen == 10_000

    def test_sample_values_come_from_stream(self):
        sample = ReservoirSample(capacity=32, seed=3)
        values = np.arange(5000, dtype=np.float64)
        sample.add(values)
        assert np.isin(sample.values(), values).all()

    def test_batching_does_not_bias(self):
        # The mean of a uniform reservoir over 0..N-1 must track N/2.
        means = []
        for seed in range(20):
            sample = ReservoirSample(capacity=256, seed=seed)
            for chunk in np.array_split(np.arange(20_000, dtype=np.float64), 7):
                sample.add(chunk)
            means.append(sample.values().mean())
        assert np.mean(means) == pytest.approx(10_000, rel=0.05)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSample(capacity=0)


class TestTrafficSketch:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(
            SyntheticTraceConfig(num_ues=150, device_type="phone", hour=20, seed=4)
        )

    def test_from_dataset_counts(self, trace):
        sketch = TrafficSketch.from_dataset(trace)
        assert sketch.num_streams == len(trace)
        assert sketch.num_events == trace.total_events
        pooled = trace.interarrival_pool()
        assert sketch.interarrival.total == pooled.size

    def test_buffer_matches_dataset_ingestion(self, trace):
        names = sorted({e.event for s in trace for e in s})
        local = {name: code for code, name in enumerate(names)}
        lengths = np.array([len(s) for s in trace.streams])
        total = int(lengths.sum())
        ues = np.repeat(np.arange(lengths.size), lengths)
        codes = np.fromiter(
            (local[e.event] for s in trace for e in s.events), np.int16, count=total
        )
        times = np.fromiter(
            (e.timestamp for s in trace for e in s.events), np.float64, count=total
        )
        from_buffer = TrafficSketch(seed=0)
        from_buffer.observe_buffer(
            times, ues, codes, [s.ue_id for s in trace.streams], names
        )
        from_ds = TrafficSketch.from_dataset(trace, seed=0)
        assert np.array_equal(
            from_buffer.interarrival.counts, from_ds.interarrival.counts
        )
        assert np.array_equal(
            from_buffer.flow_length.counts, from_ds.flow_length.counts
        )

    def test_self_distance_is_small(self, trace):
        sketch = TrafficSketch.from_dataset(trace, seed=0)
        other = TrafficSketch.from_dataset(trace, seed=9)
        distances = sketch.compare(other, rng=np.random.default_rng(0))
        assert distances["interarrival"].jsd == pytest.approx(0.0, abs=1e-9)
        assert distances["flow_length"].ks == pytest.approx(0.0, abs=1e-9)
        assert distances["interarrival"].ks_ci is not None
        ci = distances["interarrival"].ks_ci
        # Percentile-bootstrap KS is biased upward near zero, so the
        # interval need not contain the estimate — but it must be
        # ordered and stay near zero for identical traffic.
        assert ci.low <= ci.high
        assert ci.high < 0.15

    def test_compare_without_rng_skips_bootstrap(self, trace):
        sketch = TrafficSketch.from_dataset(trace)
        distances = sketch.compare(TrafficSketch.from_dataset(trace))
        assert distances["interarrival"].ks_ci is None

    def test_distance_result_as_dict(self, trace):
        sketch = TrafficSketch.from_dataset(trace, seed=0)
        result = sketch.compare(
            TrafficSketch.from_dataset(trace, seed=1),
            rng=np.random.default_rng(1),
            num_resamples=20,
        )["interarrival"]
        payload = result.as_dict()
        assert set(payload) >= {"jsd", "ks", "ks_ci", "ks_confidence"}

    def test_event_tee_matches_dataset(self, trace):
        tee = TrafficSketch(seed=0)
        for stream in trace:
            for event in stream:
                tee.observe_event(event.timestamp, stream.ue_id, event.event)
        tee.fold_tee()
        reference = TrafficSketch.from_dataset(trace, seed=0)
        assert np.array_equal(
            tee.interarrival.counts, reference.interarrival.counts
        )
        assert np.array_equal(
            tee.flow_length.counts, reference.flow_length.counts
        )
        assert tee.num_streams == reference.num_streams
