"""Scorecard assembly, JSON round-trip, and the end-to-end gate."""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.api import Session
from repro.statemachine import LTE_EVENTS, LTE_SPEC
from repro.trace import SyntheticTraceConfig, generate_trace
from repro.trace.dataset import TraceDataset
from repro.trace.schema import Stream
from repro.validate import (
    FidelityScorecard,
    GateThresholds,
    OracleValidator,
    TrafficSketch,
    build_scorecard,
    run_gate,
)


@pytest.fixture(scope="module")
def clean_trace():
    return generate_trace(
        SyntheticTraceConfig(num_ues=100, device_type="phone", hour=20, seed=6)
    )


@pytest.fixture(scope="module")
def clean_scorecard(clean_trace):
    validator = OracleValidator(LTE_SPEC)
    validator.observe_dataset(clean_trace, cohort="phones")
    return build_scorecard(
        conformance=validator.report(),
        sketch=TrafficSketch.from_dataset(clean_trace, seed=0),
        reference=TrafficSketch.from_dataset(clean_trace, seed=1),
        rng=np.random.default_rng(0),
        num_resamples=20,
        memorization=0.1,
        memorization_params={"n": 10, "epsilon": 0.2},
    )


class TestThresholds:
    def test_defaults_are_valid(self):
        GateThresholds()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GateThresholds(max_event_violation_rate=1.5)
        with pytest.raises(ValueError):
            GateThresholds(max_memorization=-0.1)


class TestScorecard:
    def test_self_comparison_passes(self, clean_scorecard):
        assert clean_scorecard.passed
        names = {check.name for check in clean_scorecard.checks}
        assert names == {
            "event_violation_rate",
            "stream_violation_rate",
            "interarrival_jsd",
            "interarrival_ks",
            "flow_length_jsd",
            "flow_length_ks",
            "memorization_repeat_fraction",
        }

    def test_check_lookup(self, clean_scorecard):
        check = clean_scorecard.check("event_violation_rate")
        assert check.value == 0.0
        with pytest.raises(KeyError):
            clean_scorecard.check("nope")

    def test_zero_thresholds_fail_distances(self, clean_trace):
        validator = OracleValidator(LTE_SPEC)
        validator.observe_dataset(clean_trace)
        other = generate_trace(
            SyntheticTraceConfig(
                num_ues=100, device_type="connected_car", hour=3, seed=8
            )
        )
        scorecard = build_scorecard(
            conformance=validator.report(),
            sketch=TrafficSketch.from_dataset(clean_trace),
            reference=TrafficSketch.from_dataset(other),
            thresholds=GateThresholds(
                max_interarrival_jsd=0.0, max_interarrival_ks=0.0
            ),
        )
        assert not scorecard.passed
        assert not scorecard.check("interarrival_jsd").passed

    def test_json_round_trip(self, clean_scorecard, tmp_path):
        path = tmp_path / "scorecard.json"
        clean_scorecard.to_json(path)
        loaded = FidelityScorecard.from_json(path)
        assert loaded.passed == clean_scorecard.passed
        assert loaded.checks == clean_scorecard.checks
        assert loaded.violations == json.loads(
            json.dumps(clean_scorecard.violations)
        )
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro/fidelity-scorecard/v1"
        assert payload["memorization"]["repeat_fraction"] == 0.1

    def test_from_json_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FidelityScorecard.from_json(tmp_path / "missing.json")

    def test_unknown_schema_rejected(self, clean_scorecard):
        payload = clean_scorecard.to_dict()
        payload["schema"] = "something/else"
        with pytest.raises(ValueError, match="schema"):
            FidelityScorecard.from_dict(payload)

    def test_summary_mentions_verdict_and_checks(self, clean_scorecard):
        text = clean_scorecard.summary()
        assert "PASS" in text
        assert "event_violation_rate" in text

    def test_memorization_null_when_skipped(self, clean_trace):
        validator = OracleValidator(LTE_SPEC)
        validator.observe_dataset(clean_trace)
        scorecard = build_scorecard(
            conformance=validator.report(),
            sketch=TrafficSketch.from_dataset(clean_trace),
            reference=TrafficSketch.from_dataset(clean_trace),
        )
        assert scorecard.memorization is None
        assert scorecard.to_dict()["memorization"] is None
        names = {check.name for check in scorecard.checks}
        assert "memorization_repeat_fraction" not in names


class TestSessionValidate:
    @pytest.fixture(scope="class")
    def session(self):
        return Session("phone-evening").synthesize().fit("smm-1").generate(
            120, seed=3
        )

    def test_scorecard_passes_for_smm(self, session, tmp_path):
        report_path = tmp_path / "gate.json"
        scorecard = session.validate(
            seed=0, num_resamples=20, report_path=report_path
        )
        assert scorecard.passed
        assert report_path.exists()
        assert scorecard.generated["streams"] == 120
        assert scorecard.memorization is not None

    def test_strict_thresholds_can_fail(self, session):
        strict = GateThresholds(
            max_interarrival_ks=0.0, max_flow_length_ks=0.0
        )
        scorecard = session.validate(
            thresholds=strict, memorization=False, num_resamples=20
        )
        assert not scorecard.passed

    def test_violating_population_fails_conformance(self, session):
        rng = np.random.default_rng(0)
        names = list(LTE_EVENTS)
        streams = []
        for ue in range(50):
            length = int(rng.integers(5, 30))
            times = np.cumsum(rng.exponential(5.0, size=length))
            events = [names[i] for i in rng.integers(0, len(names), size=length)]
            streams.append(Stream.from_arrays(f"u{ue}", "phone", times, events))
        bad = TraceDataset(streams=streams, vocabulary=LTE_EVENTS)
        scorecard = session.validate(bad, memorization=False, num_resamples=20)
        assert not scorecard.check("event_violation_rate").passed


class TestRunGate:
    def test_scenario_gate_passes(self, tmp_path):
        report = tmp_path / "gate.json"
        scorecard = run_gate(
            "phone-evening",
            backend="smm-1",
            count=100,
            seed=0,
            num_resamples=20,
            report_path=report,
        )
        assert scorecard.passed
        assert report.exists()

    def test_workload_gate_runs_streaming(self):
        scorecard = run_gate(
            "city-day",
            scale=0.05,
            seed=1,
            num_resamples=20,
        )
        assert scorecard.memorization is None  # workload mode skips it
        assert scorecard.check("event_violation_rate").value == 0.0
        assert set(scorecard.violations["per_cohort"]) == {
            "phones", "tablets", "cars",
        }

    def test_thresholds_forwarded(self):
        strict = replace(GateThresholds(), max_interarrival_ks=0.0)
        scorecard = run_gate(
            "phone-evening",
            backend="smm-1",
            count=60,
            thresholds=strict,
            memorization=False,
            num_resamples=20,
        )
        assert not scorecard.passed


class TestGateCLI:
    def test_cli_pass_and_report(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "gate.json"
        code = main(
            [
                "fidelity-gate",
                "phone-evening",
                "--backend", "smm-1",
                "--count", "80",
                "--resamples", "20",
                "--report", str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fidelity gate: PASS" in out
        assert report.exists()

    def test_cli_threshold_override_fails_build(self, capsys):
        from repro.cli import main

        code = main(
            [
                "fidelity-gate",
                "phone-evening",
                "--backend", "smm-1",
                "--count", "60",
                "--resamples", "20",
                "--skip-memorization",
                "--max-ks", "0.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
