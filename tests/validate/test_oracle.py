"""Conformance oracle: compilation, parity with the legacy replay, tees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.statemachine import LTE_EVENTS, LTE_SPEC, NR_EVENTS, NR_SPEC
from repro.statemachine.replay import replay_dataset
from repro.trace import SyntheticTraceConfig, generate_trace
from repro.trace.dataset import TraceDataset
from repro.trace.schema import ControlEvent, Stream
from repro.validate import ConformanceTally, OracleValidator, TransitionOracle


def _random_dataset(vocabulary, seed=0, num_streams=120, max_len=40):
    """Streams of uniformly random events: dense with violations."""
    rng = np.random.default_rng(seed)
    names = list(vocabulary)
    streams = []
    for ue in range(num_streams):
        length = int(rng.integers(0, max_len))
        times = np.cumsum(rng.exponential(5.0, size=length))
        events = [names[i] for i in rng.integers(0, len(names), size=length)]
        streams.append(Stream.from_arrays(f"u{ue:04d}", "phone", times, events))
    return TraceDataset(streams=streams, vocabulary=vocabulary)


def _assert_tally_matches_replay(oracle, tally, replay):
    assert tally.counted_events == replay.counted_events
    assert tally.violating_events == replay.violating_events
    assert tally.event_violation_rate == replay.event_violation_rate
    assert tally.stream_violation_rate == replay.stream_violation_rate
    assert tally.streams == len(replay.streams)
    assert tally.bootstrapped_streams == sum(
        1 for s in replay.streams if s.bootstrapped
    )
    assert oracle.top_patterns(tally, 100) == replay.top_violation_patterns(100)


class TestCompilation:
    def test_states_cover_every_sub_state(self):
        oracle = TransitionOracle(LTE_SPEC)
        expected = sum(len(subs) for subs in LTE_SPEC.sub_states.values())
        assert oracle.num_states == expected
        assert oracle.table.shape == (expected + 1, len(LTE_EVENTS) + 1)

    def test_for_spec_caches_per_spec_object(self):
        assert TransitionOracle.for_spec(LTE_SPEC) is TransitionOracle.for_spec(
            LTE_SPEC
        )
        assert TransitionOracle.for_spec(LTE_SPEC) is not TransitionOracle.for_spec(
            NR_SPEC
        )

    def test_release_substates_get_family_label(self):
        oracle = TransitionOracle(LTE_SPEC)
        labels = set(oracle.state_labels)
        assert "S1_REL_S" in labels
        assert "S1_REL_S_1" not in labels


@pytest.mark.parametrize(
    "vocabulary,spec", [(LTE_EVENTS, LTE_SPEC), (NR_EVENTS, NR_SPEC)]
)
class TestReplayParity:
    def test_random_traffic_parity(self, vocabulary, spec):
        dataset = _random_dataset(vocabulary, seed=3)
        oracle = TransitionOracle.for_spec(spec)
        tally = oracle.replay_dataset(dataset)
        replay = replay_dataset(dataset.replay_pairs(), spec)
        assert tally.violating_events > 0  # random traffic must violate
        _assert_tally_matches_replay(oracle, tally, replay)

    def test_clean_synthetic_traffic_parity(self, vocabulary, spec):
        technology = "4G" if spec is LTE_SPEC else "5G"
        dataset = generate_trace(
            SyntheticTraceConfig(
                num_ues=80, device_type="phone", hour=20, seed=9,
                technology=technology,
            )
        )
        oracle = TransitionOracle.for_spec(spec)
        tally = oracle.replay_dataset(dataset)
        replay = replay_dataset(dataset.replay_pairs(), spec)
        _assert_tally_matches_replay(oracle, tally, replay)


class TestEdgeCases:
    def test_empty_dataset(self):
        oracle = TransitionOracle.for_spec(LTE_SPEC)
        tally = oracle.replay_dataset(TraceDataset(vocabulary=LTE_EVENTS))
        assert tally.streams == 0
        assert tally.event_violation_rate == 0.0
        assert tally.stream_violation_rate == 0.0

    def test_all_empty_streams(self):
        dataset = TraceDataset(
            streams=[Stream(ue_id=f"u{i}", device_type="phone") for i in range(3)],
            vocabulary=LTE_EVENTS,
        )
        tally = TransitionOracle.for_spec(LTE_SPEC).replay_dataset(dataset)
        assert tally.streams == 3
        assert tally.counted_events == 0

    def test_unknown_event_after_bootstrap_raises(self):
        stream = Stream.from_arrays("u0", "phone", [0.0, 1.0], ["ATCH", "BOGUS"])
        dataset = TraceDataset(streams=[stream])
        with pytest.raises(KeyError):
            TransitionOracle.for_spec(LTE_SPEC).replay_dataset(dataset)

    def test_unknown_event_before_bootstrap_skipped(self):
        # Legacy try_bootstrap silently ignores unknown names.
        stream = Stream.from_arrays(
            "u0", "phone", [0.0, 1.0, 2.0], ["BOGUS", "ATCH", "S1_CONN_REL"]
        )
        dataset = TraceDataset(streams=[stream])
        tally = TransitionOracle.for_spec(LTE_SPEC).replay_dataset(dataset)
        assert tally.counted_events == 1
        assert tally.violating_events == 0

    def test_out_of_order_timestamps_raise(self):
        stream = Stream(
            ue_id="u0",
            device_type="phone",
            events=[ControlEvent(5.0, "ATCH"), ControlEvent(1.0, "SRV_REQ")],
        )
        dataset = TraceDataset(streams=[stream])
        with pytest.raises(ValueError, match="non-decreasing"):
            TransitionOracle.for_spec(LTE_SPEC).replay_dataset(dataset)

    def test_time_reset_across_streams_allowed(self):
        # Each stream's clock is independent; a later stream may restart
        # at zero without tripping the monotonicity check.
        streams = [
            Stream.from_arrays("a", "phone", [100.0, 101.0], ["ATCH", "S1_CONN_REL"]),
            Stream.from_arrays("b", "phone", [0.0, 1.0], ["ATCH", "S1_CONN_REL"]),
        ]
        tally = TransitionOracle.for_spec(LTE_SPEC).replay_dataset(
            TraceDataset(streams=streams)
        )
        assert tally.violating_events == 0


class TestTallyMerge:
    def test_merge_adds_counters_and_patterns(self):
        oracle = TransitionOracle.for_spec(LTE_SPEC)
        first = _random_dataset(LTE_EVENTS, seed=1, num_streams=40)
        second = _random_dataset(LTE_EVENTS, seed=2, num_streams=60)
        merged = oracle.replay_dataset(first).merge(oracle.replay_dataset(second))
        combined = TraceDataset(
            streams=first.streams + second.streams, vocabulary=LTE_EVENTS
        )
        whole = oracle.replay_dataset(combined)
        assert merged.counted_events == whole.counted_events
        assert merged.violating_events == whole.violating_events
        assert merged.violating_streams == whole.violating_streams
        assert np.array_equal(merged.pattern_counts, whole.pattern_counts)

    def test_merge_with_empty_tally(self):
        oracle = TransitionOracle.for_spec(LTE_SPEC)
        tally = oracle.replay_dataset(_random_dataset(LTE_EVENTS, seed=4))
        assert ConformanceTally().merge(tally).violating_events == tally.violating_events
        assert tally.merge(ConformanceTally()).counted_events == tally.counted_events


class TestBufferPath:
    def _to_buffer(self, dataset):
        names = list(dataset.vocabulary)
        local = {name: code for code, name in enumerate(names)}
        lengths = np.array([len(s) for s in dataset.streams])
        total = int(lengths.sum())
        ues = np.repeat(np.arange(lengths.size), lengths)
        codes = np.fromiter(
            (local[e.event] for s in dataset for e in s.events),
            dtype=np.int16, count=total,
        )
        times = np.fromiter(
            (e.timestamp for s in dataset for e in s.events),
            dtype=np.float64, count=total,
        )
        return times, ues, codes, names, int(lengths.size)

    def test_buffer_matches_dataset_path(self):
        dataset = _random_dataset(LTE_EVENTS, seed=7)
        oracle = TransitionOracle.for_spec(LTE_SPEC)
        times, ues, codes, names, num_ues = self._to_buffer(dataset)
        buffer_tally = oracle.validate_buffer(times, ues, codes, names, num_ues=num_ues)
        dataset_tally = oracle.replay_dataset(dataset)
        assert buffer_tally.counted_events == dataset_tally.counted_events
        assert buffer_tally.violating_events == dataset_tally.violating_events
        assert buffer_tally.violating_streams == dataset_tally.violating_streams
        assert np.array_equal(
            buffer_tally.pattern_counts, dataset_tally.pattern_counts
        )

    def test_interleaved_ues_regrouped(self):
        # Two UEs interleaved in time order; each stream alone is legal.
        times = np.array([0.0, 0.5, 1.0, 1.5])
        ues = np.array([0, 1, 0, 1])
        codes = np.array([0, 0, 1, 1], dtype=np.int16)
        names = ["ATCH", "S1_CONN_REL"]
        oracle = TransitionOracle.for_spec(LTE_SPEC)
        tally = oracle.validate_buffer(times, ues, codes, names, num_ues=2)
        assert tally.streams == 2
        assert tally.violating_events == 0
        assert tally.counted_events == 2  # one post-bootstrap event per UE

    def test_empty_buffer(self):
        oracle = TransitionOracle.for_spec(LTE_SPEC)
        empty = np.empty(0)
        tally = oracle.validate_buffer(empty, empty, empty, [], num_ues=0)
        assert tally.streams == 0


class TestOracleValidator:
    def test_per_cohort_tallies(self):
        oracle_validator = OracleValidator(LTE_SPEC)
        clean = generate_trace(
            SyntheticTraceConfig(num_ues=30, device_type="phone", hour=20, seed=2)
        )
        noisy = _random_dataset(LTE_EVENTS, seed=5, num_streams=30)
        oracle_validator.observe_dataset(clean, cohort="clean")
        oracle_validator.observe_dataset(noisy, cohort="noisy")
        report = oracle_validator.report()
        assert set(report.per_cohort) == {"clean", "noisy"}
        assert report.per_cohort["noisy"].violating_events > 0
        assert report.streams == 60
        total = (
            report.per_cohort["clean"].violating_events
            + report.per_cohort["noisy"].violating_events
        )
        assert report.violating_events == total

    def test_event_tee_matches_batch_path(self):
        dataset = _random_dataset(LTE_EVENTS, seed=11, num_streams=50)
        batch = OracleValidator(LTE_SPEC)
        batch.observe_dataset(dataset)
        tee = OracleValidator(LTE_SPEC)
        for stream in dataset:
            for event in stream:
                tee.observe_event(event.timestamp, stream.ue_id, event.event)
        assert tee.tally.counted_events == batch.tally.counted_events
        assert tee.tally.violating_events == batch.tally.violating_events
        assert tee.tally.violating_streams == batch.tally.violating_streams
        assert np.array_equal(
            tee.tally.pattern_counts, batch.tally.pattern_counts
        )

    def test_tee_is_callable(self):
        validator = OracleValidator(LTE_SPEC)
        validator(0.0, "u0", "ATCH")
        validator(1.0, "u0", "HO")
        assert validator.tally.counted_events == 1

    def test_tee_counts_oov_only_ue_as_stream(self):
        # A UE whose only traffic is out-of-vocabulary pre-bootstrap
        # noise still counts as a stream, matching the batch path.
        validator = OracleValidator(LTE_SPEC)
        validator.observe_event(0.0, "oov-only", "BOGUS")
        validator.observe_event(1.0, "normal", "ATCH")
        tally = validator.tally
        assert tally.streams == 2
        assert tally.bootstrapped_streams == 1

    def test_tee_unknown_event_raises_once_live(self):
        validator = OracleValidator(LTE_SPEC)
        validator.observe_event(0.0, "u0", "BOGUS")  # pre-bootstrap: skipped
        validator.observe_event(1.0, "u0", "ATCH")
        with pytest.raises(KeyError):
            validator.observe_event(2.0, "u0", "BOGUS")

    def test_report_as_dict_is_json_shaped(self):
        import json

        validator = OracleValidator(LTE_SPEC)
        validator.observe_dataset(
            _random_dataset(LTE_EVENTS, seed=13, num_streams=20), cohort="c"
        )
        payload = validator.report().as_dict()
        json.dumps(payload)  # must be serializable
        assert payload["machine"] == "4G"
        assert "per_cohort" in payload and "c" in payload["per_cohort"]
