"""Engine and trainer hot-path metrics: published once per run, not per step."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import CPTGPT, CPTGPTConfig, TrainingConfig, train


TINY = CPTGPTConfig(
    d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
)


class TestEngineMetrics:
    def test_generate_publishes_counters_and_gauges(self, tiny_trained_package):
        obs.enable()
        trace = tiny_trained_package.generate(
            8, np.random.default_rng(2), batch_size=4
        )
        assert len(trace.streams) == 8
        reg = obs.REGISTRY
        assert reg.get("engine.steps").value > 0
        assert reg.get("engine.slot_steps").value >= reg.get("engine.steps").value
        assert reg.get("engine.streams").value == 8
        utilization = reg.get("engine.slot_utilization").value
        assert 0.0 < utilization <= 1.0
        assert reg.get("engine.steps_per_second").value > 0
        # slots are recycled as streams finish under continuous batching
        assert reg.get("engine.recycled_slots").value >= 0

    def test_cache_pool_reuse_counted(self, tiny_trained_package):
        obs.enable()
        rng = np.random.default_rng(3)
        tiny_trained_package.generate(4, rng, batch_size=4)
        tiny_trained_package.generate(4, rng, batch_size=4)
        reg = obs.REGISTRY
        # The second run always draws its KV cache from the recycle pool
        # (the first may too, when the session-scoped engine already
        # pooled a matching cache from an earlier test).
        assert reg.get("engine.cache_reuse").value >= 1

    def test_disabled_generate_records_nothing(self, tiny_trained_package):
        tiny_trained_package.generate(4, np.random.default_rng(4), batch_size=4)
        assert len(obs.REGISTRY) == 0


class TestTrainerMetrics:
    def test_fit_publishes_step_metrics(self, phone_trace, fitted_tokenizer):
        obs.enable()
        model = CPTGPT(TINY, np.random.default_rng(0))
        train(
            model, phone_trace, fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, seed=0),
        )
        reg = obs.REGISTRY
        steps = reg.get("train.steps").value
        assert steps > 0
        hist = reg.get("train.step_seconds")
        assert hist.count == steps
        assert reg.get("train.steps_per_second").value > 0

    def test_sharded_fit_records_reduce_span(self, phone_trace, fitted_tokenizer):
        obs.enable()
        model = CPTGPT(TINY, np.random.default_rng(0))
        train(
            model, phone_trace, fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, seed=0, grad_shards=2),
        )
        agg = obs.REGISTRY.get("train.reduce")
        assert agg.calls > 0
        assert agg.total_s >= 0.0
