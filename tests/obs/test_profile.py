"""PipelineProfile: stage mapping, coverage, table, round-trip, profiled()."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import (
    PROFILE_SCHEMA,
    MetricsRegistry,
    PipelineProfile,
    StageRow,
    profiled,
    stage_of,
)


class TestStageMapping:
    @pytest.mark.parametrize(
        "name, stage",
        [
            ("generate.shard", "generation"),
            ("engine.steps", "generation"),
            ("shape.warp", "shape-warp"),
            ("merge.pull", "merge"),
            ("ring.consume", "ring"),
            ("pace.sleep", "ring"),
            ("service.tick", "ring"),
            ("simulate.run", "simulate"),
            ("mcn.offer", "simulate"),
            ("oracle.sojourn", "oracle"),
            ("gate.observe", "gate"),
            ("train.reduce", "train"),
            ("mystery.thing", "mystery"),
        ],
    )
    def test_prefix_maps_to_stage(self, name, stage):
        assert stage_of(name) == stage


def _loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.record_span("generate.shard", 2.0, events=1000)
    reg.record_span("generate.fit", 1.0)
    reg.record_span("merge.pull", 4.0, events=1000)
    reg.record_span("simulate.run", 2.0, events=900)
    return reg


class TestFromRegistry:
    def test_rows_grouped_and_ordered(self):
        prof = PipelineProfile.from_registry(_loaded_registry(), 10.0)
        assert [r.stage for r in prof.rows] == ["generation", "merge", "simulate"]
        gen = prof.rows[0]
        assert gen.wall_seconds == pytest.approx(3.0)  # shard + fit self time
        assert gen.calls == 2
        assert gen.events == 1000  # max across spans, not sum

    def test_coverage_and_accounted(self):
        prof = PipelineProfile.from_registry(_loaded_registry(), 10.0)
        assert prof.accounted_seconds == pytest.approx(9.0)
        assert prof.coverage == pytest.approx(0.9)
        assert prof.num_events == 1000

    def test_self_time_not_total_time_is_attributed(self):
        reg = MetricsRegistry()
        reg.record_span("merge.pull", 5.0, self_seconds=2.0)
        prof = PipelineProfile.from_registry(reg, 5.0)
        assert prof.rows[0].wall_seconds == pytest.approx(2.0)

    def test_empty_registry_gives_zero_coverage(self):
        prof = PipelineProfile.from_registry(MetricsRegistry(), 1.0)
        assert prof.rows == []
        assert prof.coverage == 0.0
        assert prof.num_events == 0


class TestTable:
    def test_table_lists_stages_and_footer(self):
        prof = PipelineProfile.from_registry(_loaded_registry(), 10.0)
        text = prof.table()
        for fragment in ("generation", "merge", "simulate", "(other)",
                         "stages cover 90.0% of wall time"):
            assert fragment in text

    def test_table_handles_zero_total(self):
        text = PipelineProfile.from_registry(MetricsRegistry(), 0.0).table()
        assert "stage" in text


class TestSerialization:
    def test_round_trip_via_dict(self):
        prof = PipelineProfile.from_registry(_loaded_registry(), 10.0)
        clone = PipelineProfile.from_dict(prof.to_dict())
        assert clone.total_seconds == prof.total_seconds
        assert [r.to_dict() for r in clone.rows] == [r.to_dict() for r in prof.rows]
        assert clone.schema == PROFILE_SCHEMA

    def test_save_load(self, tmp_path):
        prof = PipelineProfile.from_registry(_loaded_registry(), 10.0)
        path = tmp_path / "profile.json"
        prof.save(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["coverage"] == pytest.approx(0.9)
        loaded = PipelineProfile.load(path)
        assert loaded.coverage == pytest.approx(0.9)

    def test_stage_row_events_per_second(self):
        row = StageRow(stage="merge", wall_seconds=2.0, calls=1, events=100)
        assert row.events_per_second == pytest.approx(50.0)
        idle = StageRow(stage="merge", wall_seconds=0.0, calls=0, events=0)
        assert idle.events_per_second == 0.0


class TestProfiledContext:
    def test_enables_then_restores_disabled(self):
        assert not obs.enabled()
        with profiled() as session:
            assert obs.enabled()
        assert not obs.enabled()
        assert session.profile is not None

    def test_preserves_already_enabled_state(self):
        obs.enable()
        with profiled():
            pass
        assert obs.enabled()

    def test_reset_clears_prior_metrics(self):
        reg = MetricsRegistry()
        reg.counter("stale").inc()
        with profiled(registry=reg):
            pass
        assert len(reg) == 0

    def test_reset_false_accumulates(self):
        reg = MetricsRegistry()
        reg.record_span("merge.pull", 1.0)
        with profiled(registry=reg, reset=False):
            pass
        assert session_stage_names(reg) == ["merge"]

    def test_profile_captures_spans_inside_block(self, fake_clock):
        reg = MetricsRegistry()
        with profiled(registry=reg, clock=fake_clock) as session:
            with obs.span("merge.pull", clock=fake_clock, registry=reg) as sp:
                sp.add_events(10)
        prof = session.profile
        assert [r.stage for r in prof.rows] == ["merge"]
        assert prof.rows[0].events == 10
        assert 0.0 < prof.coverage <= 1.0

    def test_profile_on_tiny_real_workload(self):
        from repro.api import Session
        from repro.api.scenario import ScenarioSpec
        from repro.workload import Cohort, UEPopulation

        population = UEPopulation(
            name="tiny-profile",
            cohorts=(
                Cohort(
                    name="only",
                    scenario=ScenarioSpec(name="tiny-spec", num_ues=30, seed=4),
                    num_ues=6,
                ),
            ),
        )
        profile = Session("phone-evening").profile(
            population, seed=3, shard_ues=8, simulate=True, validate=True
        )
        stages = {r.stage for r in profile.rows}
        assert {"generation", "merge", "simulate"} <= stages
        assert profile.num_events > 0
        # tiny runs have proportionally more un-spanned setup; the >=0.9
        # city-day acceptance bar is exercised in benchmarks/CI.
        assert profile.coverage >= 0.8
        assert not obs.enabled()


def session_stage_names(reg: MetricsRegistry) -> list:
    return [r.stage for r in PipelineProfile.from_registry(reg, 1.0).rows]
