"""MetricsServer: /metrics (Prometheus) and /metrics.json endpoints."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, MetricsServer


@pytest.fixture
def server():
    registry = MetricsRegistry()
    registry.counter("service.delivered").inc(11)
    registry.gauge("ring.depth").set(4)
    srv = MetricsServer(0, registry=registry)  # port 0 -> ephemeral
    srv.start()
    yield srv
    srv.stop()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


class TestMetricsServer:
    def test_ephemeral_port_bound(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}/metrics"

    def test_prometheus_endpoint(self, server):
        status, ctype, body = _get(server.url)
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "service_delivered 11" in body
        assert "ring_depth 4" in body

    def test_json_endpoint(self, server):
        status, ctype, body = _get(f"http://127.0.0.1:{server.port}/metrics.json")
        assert status == 200
        assert ctype.startswith("application/json")
        payload = json.loads(body)
        assert payload["schema"] == "repro/metrics/v1"
        assert payload["metrics"]["service.delivered"]["value"] == 11

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"http://127.0.0.1:{server.port}/nope")
        assert err.value.code == 404

    def test_reflects_live_registry_updates(self, server):
        _, _, before = _get(server.url)
        assert "service_delivered 11" in before
        # the handler reads the registry on every request
        reg = server._server.RequestHandlerClass.registry
        reg.counter("service.delivered").inc(5)
        _, _, after = _get(server.url)
        assert "service_delivered 16" in after
