"""Satellite regression: disabled-path overhead on the merge hot loop <2%.

The structural guarantee comes first: with obs disabled,
``instrument_events`` returns its argument *unchanged*, so the consumer
loop is byte-for-byte the uninstrumented one.  The timing check then
bounds what remains — one ``enabled()`` predicate per ``events()``
call — using min-of-N to shed scheduler noise.
"""

from __future__ import annotations

from time import perf_counter

from repro import obs
from repro.obs import instrument_events
from repro.workload import TimelineEvent, merge_timelines

_SOURCES = 4
_EVENTS_PER_SOURCE = 12_000


def _buffers() -> list:
    return [
        [
            TimelineEvent(float(i * _SOURCES + s), f"c{s}", f"ue{i}", "TAU")
            for i in range(_EVENTS_PER_SOURCE)
        ]
        for s in range(_SOURCES)
    ]


def _drain(events) -> int:
    n = 0
    for _ in events:
        n += 1
    return n


def _interleaved_best(fn_a, fn_b, repeats: int = 9) -> tuple:
    """Min-of-N for two callables, alternating so ambient load hits both."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn_a()
        best_a = min(best_a, perf_counter() - t0)
        t0 = perf_counter()
        fn_b()
        best_b = min(best_b, perf_counter() - t0)
    return best_a, best_b


class TestDisabledPathIdentity:
    def test_wrapper_vanishes_when_disabled(self):
        """The real <2% guarantee: the disabled path IS the baseline."""
        assert not obs.enabled()
        merged = merge_timelines([iter(b) for b in _buffers()])
        assert instrument_events("merge.pull", merged) is merged

    def test_span_is_shared_noop_when_disabled(self):
        assert obs.span("merge.pump") is obs.span("ring.consume")


class TestDisabledPathTiming:
    def test_merge_loop_overhead_under_two_percent(self):
        buffers = _buffers()
        total = _SOURCES * _EVENTS_PER_SOURCE

        def baseline():
            assert _drain(merge_timelines([iter(b) for b in buffers])) == total

        def instrumented():
            merged = merge_timelines([iter(b) for b in buffers])
            assert _drain(instrument_events("merge.pull", merged)) == total

        assert not obs.enabled()
        baseline()  # warm caches before measuring
        instrumented()
        # One re-measure on miss: the loops are byte-identical (see the
        # identity test), so a first-round miss is scheduler noise.
        for attempt in range(2):
            base, inst = _interleaved_best(baseline, instrumented)
            if inst <= base * 1.02:
                break
        assert inst <= base * 1.02, (
            f"disabled-path merge overhead {inst / base - 1:+.2%} exceeds 2% "
            f"(baseline {base * 1e3:.1f}ms, instrumented {inst * 1e3:.1f}ms)"
        )


class TestEnabledPathSanity:
    def test_sampled_wrapper_counts_all_events(self):
        obs.enable()
        merged = merge_timelines([iter(b) for b in _buffers()])
        wrapped = instrument_events("merge.pull", merged, sample=16)
        assert _drain(wrapped) == _SOURCES * _EVENTS_PER_SOURCE
        agg = obs.REGISTRY.get("merge.pull")
        assert agg.events == _SOURCES * _EVENTS_PER_SOURCE
        assert agg.total_s > 0
