"""Observability tests share one rule: never leak global obs state."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import spans as spans_module


@pytest.fixture(autouse=True)
def clean_obs():
    """Disable instrumentation and empty the registry around every test."""
    obs.disable()
    obs.REGISTRY.reset()
    spans_module._STACK.clear()
    yield
    obs.disable()
    obs.REGISTRY.reset()
    spans_module._STACK.clear()


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()
