"""Spans: nesting, self-time, exception safety, sampled iterator timing."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import MetricsRegistry, instrument_events, span
from repro.obs.spans import _NOOP, _STACK


class TestDisabledPath:
    def test_span_returns_shared_noop(self):
        assert span("x") is _NOOP
        assert span("y") is _NOOP

    def test_noop_records_nothing(self):
        with span("x") as sp:
            sp.add_events(10)
        assert len(obs.REGISTRY) == 0
        assert _STACK == []

    def test_instrument_events_returns_iterable_unchanged(self):
        it = iter([1, 2, 3])
        assert instrument_events("merge.pull", it) is it


class TestEnabledSpans:
    def test_single_span_total_equals_self(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        with span("a", clock=fake_clock, registry=reg) as sp:
            sp.add_events(5)
        agg = reg.get("a")
        assert agg.total_s == pytest.approx(1.0)  # enter@1, exit@2
        assert agg.self_s == pytest.approx(agg.total_s)
        assert agg.calls == 1
        assert agg.events == 5
        assert agg.errors == 0

    def test_nested_spans_attribute_self_time(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        # clock ticks: outer enter@1, inner enter@2, inner exit@3, outer exit@4
        with span("outer", clock=fake_clock, registry=reg):
            with span("inner", clock=fake_clock, registry=reg):
                pass
        outer, inner = reg.get("outer"), reg.get("inner")
        assert inner.total_s == pytest.approx(1.0)
        assert outer.total_s == pytest.approx(3.0)
        assert outer.self_s == pytest.approx(2.0)  # 3.0 minus inner's 1.0
        assert sum(a.self_s for a in reg.spans()) == pytest.approx(outer.total_s)

    def test_sibling_children_both_credited(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        with span("outer", clock=fake_clock, registry=reg):
            with span("a", clock=fake_clock, registry=reg):
                pass
            with span("a", clock=fake_clock, registry=reg):
                pass
        outer = reg.get("outer")
        a = reg.get("a")
        assert a.calls == 2
        assert a.total_s == pytest.approx(2.0)
        assert outer.self_s == pytest.approx(outer.total_s - 2.0)

    def test_exception_pops_stack_and_counts_error(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with span("boom", clock=fake_clock, registry=reg):
                raise RuntimeError("x")
        assert _STACK == []
        agg = reg.get("boom")
        assert agg.errors == 1
        assert agg.calls == 1
        assert agg.total_s > 0

    def test_exception_in_inner_still_credits_parent(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            with span("outer", clock=fake_clock, registry=reg):
                with span("inner", clock=fake_clock, registry=reg):
                    raise ValueError
        assert _STACK == []
        assert reg.get("outer").self_s == pytest.approx(
            reg.get("outer").total_s - reg.get("inner").total_s
        )

    def test_exclude_credits_enclosing_frame(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        with span("outer", clock=fake_clock, registry=reg):
            obs.exclude(0.25)
        assert reg.get("outer").self_s == pytest.approx(
            reg.get("outer").total_s - 0.25
        )

    def test_exclude_without_open_span_is_safe(self):
        obs.exclude(1.0)  # no stack -> no-op, no error


class TestInstrumentEvents:
    def test_sample_one_times_every_pull(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        wrapped = instrument_events(
            "merge.pull", iter(range(10)), sample=1,
            clock=fake_clock, registry=reg,
        )
        assert list(wrapped) == list(range(10))
        agg = reg.get("merge.pull")
        assert agg.events == 10
        assert agg.calls == 1
        # every pull measured: 10 pulls x 1s/pull (clock steps once per read)
        assert agg.total_s == pytest.approx(10.0)

    def test_sampled_estimate_scales_up(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        wrapped = instrument_events(
            "merge.pull", iter(range(100)), sample=7,
            clock=fake_clock, registry=reg,
        )
        for _ in wrapped:
            pass
        agg = reg.get("merge.pull")
        assert agg.events == 100
        # ceil(100/7) = 15 measured pulls, each 1.0s -> estimate 15 * 100/15
        assert agg.total_s == pytest.approx(100.0)

    def test_finalize_happens_once(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        wrapped = instrument_events(
            "merge.pull", iter([1]), sample=1, clock=fake_clock, registry=reg,
        )
        list(wrapped)
        wrapped.close()
        with pytest.raises(StopIteration):
            next(wrapped)
        assert reg.get("merge.pull").calls == 1

    def test_close_finalizes_early(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        wrapped = instrument_events(
            "merge.pull", iter(range(100)), sample=1,
            clock=fake_clock, registry=reg,
        )
        next(wrapped)
        next(wrapped)
        wrapped.close()
        assert reg.get("merge.pull").events == 2

    def test_exception_mid_stream_finalizes(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()

        def exploding():
            yield 1
            yield 2
            raise RuntimeError("stream died")

        wrapped = instrument_events(
            "merge.pull", exploding(), sample=1,
            clock=fake_clock, registry=reg,
        )
        with pytest.raises(RuntimeError):
            list(wrapped)
        assert reg.get("merge.pull").events == 2

    def test_estimate_credited_to_enclosing_span(self, fake_clock):
        obs.enable()
        reg = MetricsRegistry()
        with span("outer", clock=fake_clock, registry=reg):
            wrapped = instrument_events(
                "merge.pull", iter(range(4)), sample=1,
                clock=fake_clock, registry=reg,
            )
            for _ in wrapped:
                pass
        outer = reg.get("outer")
        pull = reg.get("merge.pull")
        assert outer.self_s == pytest.approx(outer.total_s - pull.total_s)

    def test_events_property_counts_pulls(self, fake_clock):
        obs.enable()
        wrapped = instrument_events(
            "x", iter(range(5)), sample=2,
            clock=fake_clock, registry=MetricsRegistry(),
        )
        list(wrapped)
        assert wrapped.events == 5
