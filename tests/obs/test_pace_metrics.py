"""Satellite: pace() slippage reporting lands in the metrics registry."""

from __future__ import annotations

import pytest

from repro import obs
from repro.workload import TimelineEvent, pace


def _events(timestamps):
    return [TimelineEvent(float(t), "c", "u", "TAU") for t in timestamps]


class _ManualWall:
    """A settable wall clock plus a sleep that advances it."""

    def __init__(self, start: float = 100.0):
        self.now = start
        self.slept: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, delay: float) -> None:
        self.slept.append(delay)
        self.now += delay


class TestPaceMetrics:
    def test_burst_slip_counted(self):
        obs.enable()
        wall = _ManualWall()
        events = _events([0.0, 1.0, 2.0, 3.0, 4.0])
        paced = pace(
            events, speed=1.0, clock=wall.clock, sleep=wall.sleep, max_burst=2,
        )
        next(paced)          # anchors schedule at wall 100
        wall.now += 50.0     # consumer stall: everything now overdue
        for _ in paced:
            pass
        slipped = obs.REGISTRY.get("pace.slipped_events").value
        assert slipped > 0
        assert obs.REGISTRY.get("pace.slipped_seconds").value > 0
        assert obs.REGISTRY.get("pace.clock_jumps").value == 0

    def test_clock_jump_counted(self):
        obs.enable()
        wall = _ManualWall()
        events = _events([0.0, 1.0, 2.0])
        paced = pace(events, speed=1.0, clock=wall.clock, sleep=wall.sleep)
        next(paced)
        wall.now -= 7.0      # backward NTP-style step
        for _ in paced:
            pass
        assert obs.REGISTRY.get("pace.clock_jumps").value == 1
        assert obs.REGISTRY.get("pace.slipped_seconds").value == pytest.approx(7.0)
        assert obs.REGISTRY.get("pace.slipped_events").value == 0

    def test_user_on_slip_still_invoked(self):
        obs.enable()
        wall = _ManualWall()
        calls: list[tuple] = []
        events = _events([0.0, 1.0, 2.0, 3.0])
        paced = pace(
            events, speed=1.0, clock=wall.clock, sleep=wall.sleep,
            max_burst=1, on_slip=lambda n, s, r: calls.append((n, s, r)),
        )
        next(paced)
        wall.now += 10.0
        for _ in paced:
            pass
        assert calls, "user callback must still fire when obs is enabled"
        assert all(r == "burst" for _, _, r in calls)
        assert obs.REGISTRY.get("pace.slipped_events").value == pytest.approx(
            sum(n for n, _, _ in calls)
        )

    def test_disabled_pace_records_nothing(self):
        wall = _ManualWall()
        events = _events([0.0, 1.0, 2.0])
        paced = pace(
            events, speed=1.0, clock=wall.clock, sleep=wall.sleep, max_burst=1,
        )
        next(paced)
        wall.now += 10.0
        for _ in paced:
            pass
        assert len(obs.REGISTRY) == 0

    def test_smooth_replay_keeps_counters_at_zero(self):
        obs.enable()
        wall = _ManualWall()
        paced = pace(
            _events([0.0, 1.0, 2.0]), speed=1.0,
            clock=wall.clock, sleep=wall.sleep, max_burst=4,
        )
        assert len(list(paced)) == 3
        assert obs.REGISTRY.get("pace.slipped_events").value == 0
        assert obs.REGISTRY.get("pace.slipped_seconds").value == 0
        assert obs.REGISTRY.get("pace.clock_jumps").value == 0
