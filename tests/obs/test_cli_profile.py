"""CLI surface: ``repro profile`` and the ``--metrics-json`` flags."""

from __future__ import annotations

import json

from repro import obs
from repro.cli import build_parser, main
from repro.obs import PROFILE_SCHEMA, PipelineProfile


class TestParser:
    def test_profile_command_registered(self):
        args = build_parser().parse_args(
            ["profile", "city-day", "--scale", "0.02", "--no-simulate"]
        )
        assert args.command == "profile"
        assert args.no_simulate is True

    def test_metrics_flags_registered(self):
        args = build_parser().parse_args(
            ["workload", "city-day", "--metrics-json", "m.json"]
        )
        assert args.metrics_json == "m.json"
        args = build_parser().parse_args(
            ["serve", "city-day", "--metrics-port", "0"]
        )
        assert args.metrics_port == 0


class TestProfileCommand:
    def test_profile_emits_stage_table_and_json(self, tmp_path, capsys):
        out_json = tmp_path / "profile.json"
        code = main(
            ["profile", "city-day", "--scale", "0.01", "--seed", "1",
             "--json", str(out_json)]
        )
        assert code == 0
        out = capsys.readouterr().out
        for fragment in ("stage", "generation", "merge", "simulate",
                         "stages cover", "events end-to-end"):
            assert fragment in out
        payload = json.loads(out_json.read_text())
        assert payload["schema"] == PROFILE_SCHEMA
        profile = PipelineProfile.load(out_json)
        stages = {r.stage for r in profile.rows}
        assert {"generation", "merge", "simulate"} <= stages
        # tiny-scale floor; the full >=0.9 city-day bar runs in CI/benchmarks
        assert profile.coverage >= 0.8
        # the CLI restores the disabled default for the rest of the process
        assert not obs.enabled()


class TestMetricsJsonFlag:
    def test_workload_writes_metrics_json(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main(
            ["workload", "city-day", "--scale", "0.01", "--seed", "1",
             "--metrics-json", str(out)]
        )
        assert code == 0
        assert "metrics written to" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro/metrics/v1"
        span_names = {
            name.split("{", 1)[0]
            for name, body in payload["metrics"].items()
            if body.get("kind") == "span"
        }
        # the columnar hot path merges with one vectorized lexsort span
        assert "merge.chunks" in span_names
        assert any(name.startswith("generate.") for name in span_names)
        assert not obs.enabled()

    def test_no_flag_leaves_instrumentation_off(self):
        from repro.cli import _finish_metrics, _metrics_enabled

        args = build_parser().parse_args(
            ["workload", "city-day", "--scale", "0.01"]
        )
        assert _metrics_enabled(args) is False
        assert not obs.enabled()
        _finish_metrics(args, False)  # no-op, must not blow up
        assert len(obs.REGISTRY) == 0
