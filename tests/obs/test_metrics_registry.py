"""MetricsRegistry: counters, gauges, log-bucketed histograms, exposition."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, SpanAggregate


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCountersAndGauges:
    def test_counter_get_or_create_identity(self, registry):
        a = registry.counter("service.delivered")
        b = registry.counter("service.delivered")
        assert a is b
        a.inc()
        a.inc(4)
        assert b.value == 5

    def test_labels_create_distinct_series(self, registry):
        core = registry.counter("mcn.offered", region="core")
        edge = registry.counter("mcn.offered", region="edge")
        assert core is not edge
        core.inc(2)
        assert registry.get("mcn.offered", region="core").value == 2
        assert registry.get("mcn.offered", region="edge").value == 0

    def test_kind_clash_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_gauge_set(self, registry):
        g = registry.gauge("ring.depth")
        g.set(17)
        g.set(3)
        assert g.value == 3

    def test_get_missing_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_reset_empties(self, registry):
        registry.counter("a").inc()
        registry.reset()
        assert len(registry) == 0


class TestHistogramBucketing:
    def test_underflow_and_overflow_catch_alls(self, registry):
        h = registry.histogram("h", low=1.0, high=100.0, bins=4)
        h.observe(0.5)     # below low -> underflow
        h.observe(1e9)     # above high -> overflow
        assert h.counts[0] == 1
        assert h.counts[-1] == 1
        assert h.count == 2

    def test_value_on_low_edge_lands_in_first_interior_bucket(self, registry):
        # bisect_right semantics: v == edges[0] belongs to bucket 1,
        # matching QuantizedHistogram's searchsorted(side="right").
        h = registry.histogram("h", low=1.0, high=100.0, bins=4)
        h.observe(1.0)
        assert h.counts[0] == 0
        assert h.counts[1] == 1

    def test_value_on_high_edge_overflows(self, registry):
        h = registry.histogram("h", low=1.0, high=100.0, bins=4)
        h.observe(100.0)
        assert h.counts[-1] == 1

    def test_scalar_and_vector_paths_agree(self, registry):
        values = np.geomspace(1e-4, 1e6, 57)
        a = registry.histogram("scalar", low=1e-3, high=1e3, bins=16)
        b = registry.histogram("vector", low=1e-3, high=1e3, bins=16)
        for v in values:
            a.observe(float(v))
        b.add(values)
        np.testing.assert_array_equal(a.counts, b.counts)
        assert a.sum == pytest.approx(b.sum)

    def test_sum_and_count(self, registry):
        h = registry.histogram("h")
        h.add(np.array([1.0, 2.0, 3.0]))
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)

    def test_quantile_monotone_and_clipped(self, registry):
        h = registry.histogram("h", low=1.0, high=1e3, bins=32)
        h.add(np.geomspace(2.0, 500.0, 1000))
        p50, p95 = h.quantile(0.5), h.quantile(0.95)
        assert p50 <= p95
        assert 1.0 <= p50 <= 1e3
        assert np.isnan(registry.histogram("empty").quantile(0.5))

    def test_invalid_parameters_raise(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", low=0.0)
        with pytest.raises(ValueError):
            registry.histogram("bad2", low=10.0, high=1.0)


class TestExposition:
    def test_snapshot_keys_and_values(self, registry):
        registry.counter("a.count").inc(2)
        registry.gauge("b.level", region="east").set(1.5)
        snap = registry.snapshot()
        assert snap["a.count"] == {"kind": "counter", "value": 2}
        assert snap["b.level{region=east}"]["value"] == 1.5

    def test_json_roundtrips(self, registry, tmp_path):
        registry.counter("a").inc()
        registry.histogram("h").observe(1.0)
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro/metrics/v1"
        assert payload["metrics"]["a"]["value"] == 1
        assert payload["metrics"]["h"]["count"] == 1

    def test_prometheus_text_format(self, registry):
        registry.counter("service.delivered").inc(7)
        registry.gauge("ring.depth").set(3)
        h = registry.histogram("lat.ms", low=1.0, high=100.0, bins=2, region="core")
        h.observe(0.5)
        h.observe(5.0)
        h.observe(1e6)
        text = registry.to_prometheus()
        assert "service_delivered 7" in text
        assert "ring_depth 3" in text
        # cumulative buckets, labels merged and sorted, +Inf totals all
        assert 'lat_ms_bucket{le="+Inf",region="core"} 3' in text
        assert 'lat_ms_count{region="core"} 3' in text
        assert 'lat_ms_sum{region="core"}' in text

    def test_prometheus_bucket_cumulative(self, registry):
        h = registry.histogram("h", low=1.0, high=4.0, bins=2)
        h.observe(0.5)   # underflow
        h.observe(1.5)   # first interior
        h.observe(3.0)   # second interior
        lines = [
            ln for ln in registry.to_prometheus().splitlines()
            if ln.startswith("h_bucket")
        ]
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_record_span_aggregates(self, registry):
        registry.record_span("merge.pull", 1.5, events=100)
        registry.record_span("merge.pull", 0.5, events=50)
        agg = registry.get("merge.pull")
        assert isinstance(agg, SpanAggregate)
        assert agg.total_s == pytest.approx(2.0)
        assert agg.calls == 2
        assert agg.events == 150
        assert agg.to_dict()["events_per_second"] == pytest.approx(75.0)

    def test_metric_classes_exported(self):
        assert Counter.kind == "counter"
        assert Gauge.kind == "gauge"
        assert Histogram.kind == "histogram"
