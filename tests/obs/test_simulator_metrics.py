"""MCN simulator observability: run span, per-NF wait/service histograms."""

from __future__ import annotations

from repro import obs
from repro.mcn import MCNSimulator
from repro.trace import Stream, TraceDataset


def _dataset(n_ues: int = 5, events_per_ue: int = 10, spacing: float = 0.5):
    streams = []
    for u in range(n_ues):
        times, events = [], []
        for k in range(events_per_ue):
            times.append(u * 0.01 + k * spacing)
            events.append("SRV_REQ" if k % 2 == 0 else "S1_CONN_REL")
        streams.append(Stream.from_arrays(f"ue{u}", "phone", times, events))
    return TraceDataset(streams=streams)


class TestSimulatorMetrics:
    def test_run_span_counts_offered_events(self):
        obs.enable()
        data = _dataset()
        report = MCNSimulator(workers=2, seed=1).run(data)
        agg = obs.REGISTRY.get("simulate.run")
        assert agg.calls == 1
        assert agg.events == report.num_events == 50

    def test_queue_wait_and_service_histograms(self):
        obs.enable()
        report = MCNSimulator(workers=1, seed=1).run(_dataset())
        wait = obs.REGISTRY.get("mcn.queue_wait_ms", region="core")
        service = obs.REGISTRY.get("mcn.service_ms", region="core")
        assert wait.count == report.num_events
        assert service.count == report.num_events
        assert service.sum > 0  # every arrival costs service time
        # histogram mean service time matches the report's scale (ms)
        assert 0.0 < service.sum / service.count < 1e3

    def test_disabled_run_records_nothing(self):
        MCNSimulator(workers=2, seed=1).run(_dataset())
        assert len(obs.REGISTRY) == 0
