"""Shared fixtures: RNGs, small traces, fitted tokenizers, tiny models.

Heavyweight artifacts (trained models, the experiment workbench) are
session-scoped so the suite stays fast; they use deliberately tiny
configurations — fidelity quality is asserted loosely here and measured
properly by the benchmark/experiment harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPTGPT, CPTGPTConfig, GeneratorPackage, TrainingConfig, train
from repro.experiments import ExperimentScale, Workbench
from repro.statemachine import LTE_EVENTS
from repro.tokenization import StreamTokenizer
from repro.trace import SyntheticTraceConfig, generate_trace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def phone_trace():
    """A small phone trace used across test modules (read-only)."""
    return generate_trace(
        SyntheticTraceConfig(num_ues=120, device_type="phone", hour=20, seed=11)
    )


@pytest.fixture(scope="session")
def phone_trace_alt():
    """A second, statistically similar phone trace (different seed)."""
    return generate_trace(
        SyntheticTraceConfig(num_ues=120, device_type="phone", hour=20, seed=1213)
    )


@pytest.fixture(scope="session")
def fitted_tokenizer(phone_trace) -> StreamTokenizer:
    return StreamTokenizer(LTE_EVENTS).fit(phone_trace)


TINY_CONFIG = CPTGPTConfig(
    num_event_types=6,
    d_model=16,
    num_layers=1,
    num_heads=2,
    d_ff=32,
    head_hidden=32,
    max_len=96,
)


@pytest.fixture(scope="session")
def tiny_trained_package(phone_trace, fitted_tokenizer) -> GeneratorPackage:
    """A CPT-GPT trained for a few epochs — enough for plumbing tests."""
    model = CPTGPT(TINY_CONFIG, np.random.default_rng(0))
    train(
        model,
        phone_trace,
        fitted_tokenizer,
        TrainingConfig(epochs=3, batch_size=32, learning_rate=3e-3, seed=0),
    )
    return GeneratorPackage(
        model,
        fitted_tokenizer,
        phone_trace.initial_event_distribution(),
        "phone",
    )


MICRO_SCALE = ExperimentScale(
    name="micro",
    train_ues=60,
    eval_ues=60,
    generated_streams=60,
    cpt_config=CPTGPTConfig(
        d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
    ),
    cpt_epochs=2,
    cpt_transfer_epochs=1,
    ns_epochs=2,
    ns_transfer_epochs=1,
    smm_clusters=4,
)


@pytest.fixture(scope="session")
def micro_workbench() -> Workbench:
    """Workbench at micro scale for experiment-harness tests."""
    return Workbench(MICRO_SCALE)
