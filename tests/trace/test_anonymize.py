"""Anonymization pipeline tests (paper Appendix A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import (
    jitter_timestamps,
    k_anonymous_device_counts,
    pseudonymize,
)


class TestPseudonymize:
    def test_ids_replaced_and_consistent(self, phone_trace):
        anonymized = pseudonymize(phone_trace, salt="secret")
        originals = {s.ue_id for s in phone_trace}
        pseudonyms = {s.ue_id for s in anonymized}
        assert originals.isdisjoint(pseudonyms)
        assert len(pseudonyms) == len(originals)  # mapping is injective here
        again = pseudonymize(phone_trace, salt="secret")
        assert [s.ue_id for s in again] == [s.ue_id for s in anonymized]

    def test_different_salts_differ(self, phone_trace):
        a = pseudonymize(phone_trace, salt="a")
        b = pseudonymize(phone_trace, salt="b")
        assert [s.ue_id for s in a] != [s.ue_id for s in b]

    def test_events_preserved(self, phone_trace):
        anonymized = pseudonymize(phone_trace, salt="s")
        for original, anon in zip(phone_trace, anonymized):
            assert original.event_names() == anon.event_names()
            np.testing.assert_array_equal(original.timestamps(), anon.timestamps())

    def test_empty_salt_rejected(self, phone_trace):
        with pytest.raises(ValueError):
            pseudonymize(phone_trace, salt="")


class TestJitter:
    def test_interarrivals_preserved_exactly(self, phone_trace, rng):
        jittered = jitter_timestamps(phone_trace, 30.0, rng)
        for original, moved in zip(phone_trace, jittered):
            np.testing.assert_allclose(
                original.interarrivals(), moved.interarrivals(), atol=1e-9
            )

    def test_offsets_bounded(self, phone_trace, rng):
        jittered = jitter_timestamps(phone_trace, 30.0, rng)
        for original, moved in zip(phone_trace, jittered):
            if len(original) == 0:
                continue
            offset = moved.timestamps()[0] - original.timestamps()[0]
            assert abs(offset) <= 30.0

    def test_zero_jitter_identity(self, phone_trace, rng):
        jittered = jitter_timestamps(phone_trace, 0.0, rng)
        for original, moved in zip(phone_trace, jittered):
            np.testing.assert_array_equal(original.timestamps(), moved.timestamps())

    def test_negative_jitter_rejected(self, phone_trace, rng):
        with pytest.raises(ValueError):
            jitter_timestamps(phone_trace, -1.0, rng)


class TestKAnonymity:
    def test_counts(self, phone_trace):
        result = k_anonymous_device_counts(phone_trace, k=10)
        assert result == {"phone": True}
        result = k_anonymous_device_counts(phone_trace, k=10**6)
        assert result == {"phone": False}

    def test_invalid_k(self, phone_trace):
        with pytest.raises(ValueError):
            k_anonymous_device_counts(phone_trace, k=0)
