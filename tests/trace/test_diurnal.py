"""Diurnal activity profile tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import DiurnalProfile, Harmonic


class TestHarmonic:
    def test_peak_at_peak_hour(self):
        h = Harmonic(amplitude=0.5, peak_hour=20.0)
        assert h.value(20.0) == pytest.approx(0.5)

    def test_trough_half_day_away(self):
        h = Harmonic(amplitude=0.5, peak_hour=20.0)
        assert h.value(8.0) == pytest.approx(-0.5)

    def test_two_cycles_per_day(self):
        h = Harmonic(amplitude=0.3, peak_hour=8.0, cycles_per_day=2)
        assert h.value(8.0) == pytest.approx(0.3)
        assert h.value(20.0) == pytest.approx(0.3)  # 12h later, same phase


class TestDiurnalProfile:
    def test_flat_profile_is_unity(self):
        profile = DiurnalProfile.flat()
        for hour in (0, 6.5, 12, 23.9):
            assert profile.activity(hour) == pytest.approx(1.0)

    def test_activity_positive_everywhere(self):
        profile = DiurnalProfile((Harmonic(1.5, 10.0), Harmonic(0.7, 3.0, 2)))
        hours = np.linspace(0, 24, 97)
        values = profile.activity_series(hours)
        assert np.all(values > 0)

    def test_periodicity(self):
        profile = DiurnalProfile((Harmonic(0.4, 20.0),))
        assert profile.activity(3.0) == pytest.approx(profile.activity(27.0))
        assert profile.activity(-4.0) == pytest.approx(profile.activity(20.0))

    def test_peak_exceeds_trough(self):
        profile = DiurnalProfile((Harmonic(0.5, 20.0),))
        assert profile.activity(20.0) > profile.activity(8.0)

    def test_series_matches_scalar(self):
        profile = DiurnalProfile((Harmonic(0.3, 9.0),))
        hours = np.array([0.0, 9.0, 15.5])
        series = profile.activity_series(hours)
        for hour, value in zip(hours, series):
            assert value == pytest.approx(profile.activity(hour))
