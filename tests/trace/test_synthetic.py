"""Synthetic operator-trace simulator: legality, statistics, drift."""

from __future__ import annotations

import numpy as np
import pytest

from repro.statemachine import LTE_SPEC, NR_SPEC, replay_dataset
from repro.trace import (
    DEVICE_PROFILES,
    DeviceType,
    LogNormalMixture,
    SyntheticTraceConfig,
    generate_hourly_traces,
    generate_mixed_trace,
    generate_trace,
    get_profile,
)


class TestConfigValidation:
    def test_bad_device_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(num_ues=1, device_type="toaster")

    def test_bad_technology_rejected(self):
        with pytest.raises(ValueError, match="4G or 5G"):
            SyntheticTraceConfig(num_ues=1, technology="6G")

    def test_negative_ues_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(num_ues=-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(num_ues=1, duration=0)


class TestLegality:
    def test_4g_trace_has_zero_violations(self, phone_trace):
        replay = replay_dataset(phone_trace.replay_pairs(), LTE_SPEC)
        assert replay.violating_events == 0

    def test_5g_trace_has_zero_violations(self):
        trace = generate_trace(
            SyntheticTraceConfig(num_ues=60, technology="5G", seed=3)
        )
        replay = replay_dataset(trace.replay_pairs(), NR_SPEC)
        assert replay.violating_events == 0

    def test_5g_trace_has_no_tau(self):
        trace = generate_trace(
            SyntheticTraceConfig(num_ues=40, technology="5G", seed=3)
        )
        assert "TAU" not in trace.event_breakdown()
        assert trace.event_breakdown().get("REGISTER", 0) >= 0


class TestStatistics:
    def test_reproducible_with_seed(self):
        config = SyntheticTraceConfig(num_ues=20, seed=9)
        a = generate_trace(config)
        b = generate_trace(config)
        for s1, s2 in zip(a, b):
            assert s1.event_names() == s2.event_names()
            np.testing.assert_allclose(s1.timestamps(), s2.timestamps())

    def test_different_seeds_differ(self):
        a = generate_trace(SyntheticTraceConfig(num_ues=20, seed=1))
        b = generate_trace(SyntheticTraceConfig(num_ues=20, seed=2))
        assert any(
            s1.event_names() != s2.event_names() for s1, s2 in zip(a, b)
        )

    def test_phone_breakdown_near_paper(self, phone_trace):
        breakdown = phone_trace.event_breakdown()
        # Paper Table 7 real values: SRV_REQ 47.06%, S1_CONN_REL 48.25%.
        assert 0.40 < breakdown["SRV_REQ"] < 0.55
        assert 0.40 < breakdown["S1_CONN_REL"] < 0.55
        assert breakdown["HO"] < 0.08
        assert breakdown["ATCH"] < 0.02

    def test_car_has_more_handovers_than_phone(self, phone_trace):
        car = generate_trace(
            SyntheticTraceConfig(num_ues=120, device_type="connected_car", seed=5)
        )
        assert car.event_breakdown()["HO"] > phone_trace.event_breakdown()["HO"] * 2

    def test_timestamps_within_window(self):
        config = SyntheticTraceConfig(num_ues=30, hour=5, seed=2)
        trace = generate_trace(config)
        start, end = 5 * 3600.0, 6 * 3600.0
        for stream in trace:
            times = stream.timestamps()
            if times.size:
                assert times.min() >= start
                assert times.max() < end

    def test_timestamps_quantized_to_resolution(self):
        trace = generate_trace(SyntheticTraceConfig(num_ues=20, seed=4, time_resolution=1.0))
        for stream in trace:
            times = stream.timestamps()
            np.testing.assert_allclose(times, np.floor(times))

    def test_continuous_timestamps_when_resolution_zero(self):
        trace = generate_trace(SyntheticTraceConfig(num_ues=30, seed=4, time_resolution=0.0))
        pool = trace.interarrival_pool()
        fractional = pool - np.floor(pool)
        assert np.any(fractional > 1e-9)

    def test_long_tailed_interarrivals(self, phone_trace):
        pool = phone_trace.interarrival_pool()
        pool = pool[pool > 0]
        # Figure 7: long tail, mean well above median.
        assert pool.mean() / np.median(pool) > 1.5


class TestDiurnalDrift:
    def test_busy_hour_produces_more_events(self):
        # Phone diurnal peaks at 20h; 8h is a trough.
        hourly = generate_hourly_traces(80, [8, 20], seed=6)
        assert hourly[20].total_events > hourly[8].total_events * 1.1

    def test_hourly_traces_keyed_by_hour(self):
        hourly = generate_hourly_traces(10, [3, 7], seed=1)
        assert set(hourly) == {3, 7}


class TestMixedTrace:
    def test_mixed_population(self):
        mixed = generate_mixed_trace({"phone": 10, "tablet": 5}, seed=2)
        assert len(mixed) == 15
        assert set(mixed.device_types()) == {"phone", "tablet"}


class TestDeviceProfiles:
    def test_profiles_exist_for_all_device_types(self):
        assert set(DEVICE_PROFILES) == set(DeviceType.ALL)

    def test_get_profile_rejects_unknown(self):
        with pytest.raises(ValueError):
            get_profile("fridge")

    def test_profile_probabilities_sum_to_one(self):
        for profile in DEVICE_PROFILES.values():
            connected = (
                profile.p_ho
                + profile.p_tau_connected
                + profile.p_release
                + profile.p_detach_connected
            )
            idle = profile.p_service_request + profile.p_tau_idle + profile.p_detach_idle
            assert connected == pytest.approx(1.0)
            assert idle == pytest.approx(1.0)

    def test_mixture_weights_validated(self):
        with pytest.raises(ValueError, match="sum to 1"):
            LogNormalMixture(((0.5, 0.0, 1.0),))

    def test_mixture_sigma_validated(self):
        with pytest.raises(ValueError, match="positive"):
            LogNormalMixture(((1.0, 0.0, -1.0),))

    def test_mixture_sampling_matches_mean(self, rng):
        mixture = LogNormalMixture(((0.6, np.log(10.0), 0.5), (0.4, np.log(50.0), 0.5)))
        samples = mixture.sample(rng, size=40000)
        assert samples.mean() == pytest.approx(mixture.mean(), rel=0.05)

    def test_mixture_scalar_sample(self, rng):
        mixture = LogNormalMixture(((1.0, 0.0, 0.5),))
        value = mixture.sample(rng)
        assert isinstance(value, float) and value > 0
