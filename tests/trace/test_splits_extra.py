"""Additional splitting-utility properties (hypothesis-driven)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import Stream, TraceDataset, kfold_by_ue, split_by_time, split_by_ue


def _dataset(num_streams: int) -> TraceDataset:
    streams = [
        Stream.from_arrays(f"ue-{i:04d}", "phone", [float(i), float(i) + 5.0],
                           ["SRV_REQ", "S1_CONN_REL"])
        for i in range(num_streams)
    ]
    return TraceDataset(streams=streams)


@given(st.integers(5, 80), st.floats(0.1, 0.9))
@settings(max_examples=40, deadline=None)
def test_split_partitions_everything(num_streams, fraction):
    dataset = _dataset(num_streams)
    train, test = split_by_ue(dataset, fraction)
    assert len(train) + len(test) == num_streams
    train_ids = {s.ue_id for s in train}
    test_ids = {s.ue_id for s in test}
    assert train_ids.isdisjoint(test_ids)


@given(st.integers(10, 60), st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_kfold_is_a_partition(num_streams, folds):
    dataset = _dataset(num_streams)
    parts = kfold_by_ue(dataset, folds)
    assert len(parts) == folds
    all_ids = [s.ue_id for part in parts for s in part]
    assert sorted(all_ids) == sorted(s.ue_id for s in dataset)


def test_split_fraction_approximately_respected():
    dataset = _dataset(2000)
    train, _ = split_by_ue(dataset, 0.7)
    assert 0.65 < len(train) / 2000 < 0.75


def test_split_salt_changes_assignment():
    dataset = _dataset(200)
    a_train, _ = split_by_ue(dataset, 0.5, salt="a")
    b_train, _ = split_by_ue(dataset, 0.5, salt="b")
    assert {s.ue_id for s in a_train} != {s.ue_id for s in b_train}


def test_split_by_time_preserves_event_total():
    dataset = _dataset(50)
    left, right = split_by_time(dataset, boundary=25.0)
    assert left.total_events + right.total_events == dataset.total_events


def test_split_by_time_empty_side():
    dataset = _dataset(10)
    left, right = split_by_time(dataset, boundary=-1.0)
    assert len(left) == 0
    assert right.total_events == dataset.total_events


def test_split_by_time_mid_stream_splits_stream():
    stream = Stream.from_arrays("u", "phone", [0.0, 10.0, 20.0],
                                ["SRV_REQ", "S1_CONN_REL", "SRV_REQ"])
    dataset = TraceDataset(streams=[stream])
    left, right = split_by_time(dataset, boundary=15.0)
    assert left.total_events == 2
    assert right.total_events == 1
    assert left[0].ue_id == right[0].ue_id == "u"
