"""Trace IO: JSONL and CSV round-trips and failure modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.statemachine import LTE_EVENTS
from repro.trace import (
    Stream,
    SyntheticTraceConfig,
    TraceDataset,
    generate_trace,
    load_csv,
    load_jsonl,
    save_csv,
    save_jsonl,
)


@pytest.fixture
def small_trace():
    return generate_trace(SyntheticTraceConfig(num_ues=15, seed=42))


class TestJsonl:
    def test_roundtrip_exact(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(small_trace, path)
        loaded = load_jsonl(path)
        assert len(loaded) == len(small_trace)
        assert loaded.vocabulary is not None
        assert loaded.vocabulary.names == LTE_EVENTS.names
        for original, restored in zip(small_trace, loaded):
            assert original.ue_id == restored.ue_id
            assert original.device_type == restored.device_type
            assert original.event_names() == restored.event_names()
            np.testing.assert_array_equal(original.timestamps(), restored.timestamps())

    def test_header_validated(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="unrecognized trace format"):
            load_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_jsonl(path)

    def test_unknown_vocabulary_tag_rejected(self, tmp_path):
        path = tmp_path / "tag.jsonl"
        path.write_text('{"format": "repro-cpt-trace-v1", "vocabulary": "7G"}\n')
        with pytest.raises(ValueError, match="unknown vocabulary"):
            load_jsonl(path)

    def test_creates_parent_directories(self, small_trace, tmp_path):
        path = tmp_path / "nested" / "dir" / "trace.jsonl"
        save_jsonl(small_trace, path)
        assert path.exists()

    def test_5g_vocabulary_tag_roundtrip(self, tmp_path):
        trace = generate_trace(SyntheticTraceConfig(num_ues=5, technology="5G", seed=1))
        path = tmp_path / "nr.jsonl"
        save_jsonl(trace, path)
        loaded = load_jsonl(path)
        assert "REGISTER" in loaded.vocabulary


class TestCsv:
    def test_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(small_trace, path)
        loaded = load_csv(path, vocabulary=LTE_EVENTS)
        assert len(loaded) == sum(1 for s in small_trace if len(s) > 0)
        by_id = {s.ue_id: s for s in loaded}
        for original in small_trace:
            if len(original) == 0:
                continue  # CSV cannot represent empty streams
            restored = by_id[original.ue_id]
            assert original.event_names() == restored.event_names()
            np.testing.assert_allclose(original.timestamps(), restored.timestamps())

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="must have columns"):
            load_csv(path)

    def test_stream_order_preserved(self, tmp_path):
        dataset = TraceDataset(
            streams=[
                Stream.from_arrays("z-ue", "phone", [0.0], ["SRV_REQ"]),
                Stream.from_arrays("a-ue", "phone", [1.0], ["SRV_REQ"]),
            ]
        )
        path = tmp_path / "ordered.csv"
        save_csv(dataset, path)
        loaded = load_csv(path)
        assert [s.ue_id for s in loaded] == ["z-ue", "a-ue"]
