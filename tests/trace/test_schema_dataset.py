"""Stream/dataset data model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.statemachine import LTE_EVENTS
from repro.trace import ControlEvent, DeviceType, Stream, TraceDataset


def make_stream(ue="u1", device="phone", times=(0.0, 5.0, 17.0), events=("SRV_REQ", "S1_CONN_REL", "SRV_REQ")):
    return Stream.from_arrays(ue, device, list(times), list(events))


class TestStream:
    def test_from_arrays_roundtrip(self):
        s = make_stream()
        assert len(s) == 3
        assert s.event_names() == ["SRV_REQ", "S1_CONN_REL", "SRV_REQ"]
        np.testing.assert_allclose(s.timestamps(), [0.0, 5.0, 17.0])

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            Stream.from_arrays("u", "phone", [0.0], ["A", "B"])

    def test_interarrivals_first_zero(self):
        s = make_stream()
        np.testing.assert_allclose(s.interarrivals(), [0.0, 5.0, 12.0])

    def test_interarrivals_empty(self):
        s = Stream(ue_id="u", device_type="phone")
        assert s.interarrivals().size == 0

    def test_validate_rejects_unordered(self):
        s = Stream(
            ue_id="u",
            device_type="phone",
            events=[ControlEvent(5.0, "SRV_REQ"), ControlEvent(1.0, "S1_CONN_REL")],
        )
        with pytest.raises(ValueError, match="out of order"):
            s.validate()

    def test_bad_device_type_rejected(self):
        with pytest.raises(ValueError, match="unknown device type"):
            Stream(ue_id="u", device_type="fridge")

    def test_non_finite_timestamp_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            ControlEvent(float("nan"), "SRV_REQ")

    def test_count_and_duration(self):
        s = make_stream()
        assert s.count("SRV_REQ") == 2
        assert s.count("HO") == 0
        assert s.duration() == 17.0
        assert Stream(ue_id="u", device_type="phone").duration() == 0.0

    def test_as_pairs(self):
        assert make_stream().as_pairs()[0] == (0.0, "SRV_REQ")


class TestTraceDataset:
    def _dataset(self):
        return TraceDataset(
            streams=[
                make_stream("u1"),
                make_stream("u2", device="tablet", times=(0.0, 3.0), events=("SRV_REQ", "S1_CONN_REL")),
                make_stream("u3", times=(0.0,), events=("ATCH",)),
            ],
            vocabulary=LTE_EVENTS,
        )

    def test_len_iter_getitem(self):
        ds = self._dataset()
        assert len(ds) == 3
        assert ds[0].ue_id == "u1"
        assert [s.ue_id for s in ds] == ["u1", "u2", "u3"]

    def test_by_device_type(self):
        ds = self._dataset()
        assert len(ds.by_device_type("tablet")) == 1
        assert len(ds.by_device_type("connected_car")) == 0

    def test_sample_without_replacement(self, rng):
        ds = self._dataset()
        sampled = ds.sample(2, rng)
        assert len(sampled) == 2
        assert len({s.ue_id for s in sampled}) == 2

    def test_sample_too_many_raises(self, rng):
        with pytest.raises(ValueError, match="cannot sample"):
            self._dataset().sample(10, rng)

    def test_truncate_and_singletons(self):
        ds = self._dataset()
        assert len(ds.truncate_streams(2)) == 2
        assert len(ds.drop_singletons()) == 2

    def test_total_events_and_breakdown(self):
        ds = self._dataset()
        assert ds.total_events == 6
        breakdown = ds.event_breakdown()
        assert breakdown["SRV_REQ"] == pytest.approx(3 / 6)
        assert breakdown["ATCH"] == pytest.approx(1 / 6)
        assert breakdown["HO"] == 0.0
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_flow_lengths(self):
        ds = self._dataset()
        np.testing.assert_array_equal(ds.flow_lengths(), [3, 2, 1])
        np.testing.assert_array_equal(ds.flow_lengths("SRV_REQ"), [2, 1, 0])

    def test_interarrival_pool_skips_first_tokens(self):
        ds = self._dataset()
        pool = ds.interarrival_pool()
        np.testing.assert_allclose(np.sort(pool), [3.0, 5.0, 12.0])

    def test_initial_event_distribution(self):
        dist = self._dataset().initial_event_distribution()
        assert dist["SRV_REQ"] == pytest.approx(2 / 3)
        assert dist["ATCH"] == pytest.approx(1 / 3)

    def test_initial_event_distribution_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TraceDataset().initial_event_distribution()

    def test_validate_rejects_foreign_event(self):
        ds = TraceDataset(
            streams=[make_stream(events=("SRV_REQ", "S1_CONN_REL", "REGISTER"))],
            vocabulary=LTE_EVENTS,
        )
        with pytest.raises(ValueError, match="not in vocabulary"):
            ds.validate()

    def test_device_types_listing(self):
        assert self._dataset().device_types() == ["phone", "tablet"]


class TestDeviceTypeEnum:
    def test_all_members(self):
        assert set(DeviceType.ALL) == {"phone", "connected_car", "tablet"}

    def test_validate_passthrough(self):
        assert DeviceType.validate("phone") == "phone"
