"""Experiment harness tests on a micro-scale workbench (session-scoped).

These verify the *plumbing* of every table/figure — structure, keys,
value ranges — not fidelity quality, which needs larger scales (see
benchmarks/ and EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    Workbench,
    fig2,
    fig5,
    fig6,
    fig7,
    format_table,
    run_all,
    table3,
    table5,
    table6,
    table7,
    table11,
)
from repro.trace import DeviceType


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table("T", ["a", "long-header"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[1]
        assert "333" in lines[4]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table("T", ["a"], [["1", "2"]])


class TestWorkbenchCaching:
    def test_traces_cached(self, micro_workbench):
        a = micro_workbench.train_trace(DeviceType.PHONE)
        b = micro_workbench.train_trace(DeviceType.PHONE)
        assert a is b

    def test_train_test_differ(self, micro_workbench):
        train = micro_workbench.train_trace(DeviceType.PHONE)
        test = micro_workbench.test_trace(DeviceType.PHONE)
        assert {s.ue_id for s in train}.isdisjoint({s.ue_id for s in test})

    def test_generated_cached_and_sized(self, micro_workbench):
        a = micro_workbench.generated("SMM-1", DeviceType.PHONE)
        b = micro_workbench.generated("SMM-1", DeviceType.PHONE)
        assert a is b
        assert len(a) == micro_workbench.scale.generated_streams

    def test_unknown_generator_rejected(self, micro_workbench):
        with pytest.raises(ValueError, match="unknown generator"):
            micro_workbench.generated("GPT-5", DeviceType.PHONE)

    def test_cptgpt_transfer_records_times(self, micro_workbench):
        micro_workbench.cptgpt(DeviceType.TABLET)
        assert "cptgpt/phone" in micro_workbench.training_times
        assert "cptgpt/tablet" in micro_workbench.training_times


class TestExperimentOutputs:
    def test_table3_structure(self, micro_workbench):
        result = table3.compute(micro_workbench)
        assert 0.0 <= result["event_rate"] <= 1.0
        assert 0.0 <= result["stream_rate"] <= 1.0
        assert len(result["top_patterns"]) <= 3
        assert "Table 3" in table3.run(micro_workbench)

    def test_table5_structure(self, micro_workbench):
        result = table5.compute(micro_workbench)
        assert set(result) == set(DeviceType.ALL)
        for device in DeviceType.ALL:
            for key in ("NetShare/events", "CPT-GPT/events"):
                assert 0.0 <= result[device][key] <= 1.0

    def test_table6_structure(self, micro_workbench):
        result = table6.compute(micro_workbench)
        assert set(result) == set(table6.METRIC_ROWS)
        for metric in table6.METRIC_ROWS:
            for device in DeviceType.ALL:
                for generator, value in result[metric][device].items():
                    assert 0.0 <= value <= 1.0, (metric, device, generator)

    def test_table6_smm_has_zero_violation_semantics(self, micro_workbench):
        from repro.metrics import violation_stats

        for name in ("SMM-1", "SMM-20k"):
            stats = violation_stats(
                micro_workbench.generated(name, DeviceType.PHONE), micro_workbench.spec
            )
            assert stats.event_rate == 0.0

    def test_table7_structure(self, micro_workbench):
        result = table7.compute(micro_workbench)
        for device in DeviceType.ALL:
            assert "real" in result[device]
            assert sum(result[device]["real"].values()) == pytest.approx(1.0)
            # Diffs must sum to ~0 (both are probability simplices).
            assert sum(result[device]["CPT-GPT"].values()) == pytest.approx(0.0, abs=1e-9)

    def test_table11_structure(self, micro_workbench):
        result = table11.compute(micro_workbench, max_ngrams=300)
        assert set(result) == {
            (n, eps) for n in table11.N_VALUES for eps in table11.EPSILONS
        }
        for value in result.values():
            assert 0.0 <= value <= 1.0
        # Larger epsilon can only increase repeats at fixed n.
        for n in table11.N_VALUES:
            assert result[(n, 0.20)] >= result[(n, 0.10)] - 1e-12

    def test_fig2_structure(self, micro_workbench):
        result = fig2.compute(micro_workbench)
        assert set(result["series"]) == {"Real", "NetShare", "CPT-GPT"}
        for name, series in result["series"].items():
            cdf = series["cdf"]
            assert np.all(np.diff(cdf) >= -1e-12), name

    def test_fig5_structure(self, micro_workbench):
        result = fig5.compute(micro_workbench)
        for device in DeviceType.ALL:
            assert set(result[device]) == set(fig5.COLUMNS)

    def test_fig6_counts_and_values(self, micro_workbench):
        result = fig6.compute(micro_workbench)
        counts = fig6.sweep_counts(micro_workbench)
        assert set(result) == set(counts)
        for metrics in result.values():
            assert 0.0 <= metrics["flow_length_all"] <= 1.0

    def test_fig7_long_tail_summary(self, micro_workbench):
        result = fig7.compute(micro_workbench)
        stats = result["stats"]
        assert stats["skew_ratio"] > 1.2  # raw distribution is long-tailed
        assert stats["log_skew_ratio"] < stats["skew_ratio"]  # log evens it out

    def test_run_all_subset(self, micro_workbench):
        report = run_all(micro_workbench, ["table3", "fig7"])
        assert "Table 3" in report and "Figure 7" in report

    def test_run_all_unknown_rejected(self, micro_workbench):
        with pytest.raises(KeyError):
            run_all(micro_workbench, ["table99"])

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table3", "table4", "table5", "table6", "table7", "table8",
            "table9", "table10", "table11", "fig2", "fig5", "fig6", "fig7",
            "exp5g",
        }
