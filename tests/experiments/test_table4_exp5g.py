"""Tests for the Table 4 view and the 5G extension experiment."""

from __future__ import annotations

import pytest

from repro.experiments import exp5g, table4


class TestTable4:
    def test_structure_and_rendering(self, micro_workbench):
        result = table4.compute(micro_workbench, hours=(10, 11, 12))
        assert set(result) == {
            "six_hour_scratch",
            "one_hour_scratch",
            "one_hour_finetune",
            "six_hourly_models_transfer_total",
        }
        for value in result.values():
            assert value > 0
        # Transfer total must cost at least the first-hour scratch run.
        assert (
            result["six_hourly_models_transfer_total"]
            >= result["one_hour_scratch"] * 0.99
        )


class TestExp5G:
    def test_structure(self, micro_workbench):
        result = exp5g.compute(micro_workbench)
        assert result["d_token"] == 8  # 5 events + 1 interarrival + 2 stop
        metrics = result["metrics"]
        for key in ("violation_events", "sojourn_connected", "flow_length_all"):
            assert 0.0 <= metrics[key] <= 1.0
        assert "TAU" not in result["breakdown_diff"]
        # 5G breakdown diffs also sum to zero (both simplices).
        assert sum(result["breakdown_diff"].values()) == pytest.approx(0.0, abs=1e-9)
        assert "5G" in exp5g.run(micro_workbench)
