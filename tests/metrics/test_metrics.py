"""Fidelity metrics: distances, violations, sojourns, breakdowns, flows."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    average_breakdown_difference,
    breakdown_difference,
    cdf_points,
    compare_flow_lengths,
    compare_sojourns,
    empirical_cdf,
    fidelity_report,
    max_y_distance,
    per_ue_sojourns,
    violation_stats,
)
from repro.statemachine import LTE_SPEC
from repro.trace import Stream, TraceDataset


class TestMaxYDistance:
    def test_identical_samples_zero(self, rng):
        sample = rng.normal(size=200)
        assert max_y_distance(sample, sample) == 0.0

    def test_disjoint_samples_one(self):
        assert max_y_distance([1, 2, 3], [10, 20, 30]) == 1.0

    def test_known_value(self):
        # CDFs diverge by exactly 0.5 between the overlapping halves.
        assert max_y_distance([1, 2], [2, 3]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            max_y_distance([], [1.0])

    def test_matches_scipy(self, rng):
        from scipy.stats import ks_2samp

        a, b = rng.normal(0, 1, 300), rng.normal(0.3, 1.2, 250)
        ours = max_y_distance(a, b)
        assert ours == pytest.approx(ks_2samp(a, b).statistic, abs=1e-12)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bounded_and_symmetric(self, a, b):
        d = max_y_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(max_y_distance(b, a))

    def test_empirical_cdf_heights(self):
        values, heights = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(values, [1, 2, 3])
        np.testing.assert_allclose(heights, [1 / 3, 2 / 3, 1.0])

    def test_cdf_points_monotone(self, rng):
        grid, cdf = cdf_points(rng.exponential(10, 400))
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] <= 1.0


def _dataset(streams):
    return TraceDataset(streams=streams)


def _legal_stream(ue="u", n_cycles=3, conn=10.0, idle=50.0):
    times, events = [], []
    t = 0.0
    for _ in range(n_cycles):
        times.append(t)
        events.append("SRV_REQ")
        t += conn
        times.append(t)
        events.append("S1_CONN_REL")
        t += idle
    return Stream.from_arrays(ue, "phone", times, events)


class TestViolationStats:
    def test_legal_dataset_zero(self):
        stats = violation_stats(_dataset([_legal_stream()]), LTE_SPEC)
        assert stats.event_rate == 0.0
        assert stats.stream_rate == 0.0
        assert stats.top_patterns == ()

    def test_violating_dataset_counts(self):
        bad = Stream.from_arrays(
            "b", "phone", [0.0, 1.0, 2.0], ["SRV_REQ", "SRV_REQ", "S1_CONN_REL"]
        )
        stats = violation_stats(_dataset([bad, _legal_stream()]), LTE_SPEC)
        assert stats.event_rate > 0
        assert stats.stream_rate == pytest.approx(0.5)
        assert stats.top_patterns[0][0] == ("CONNECTED", "SRV_REQ")
        assert "CONNECTED" in str(stats)


class TestSojournMetrics:
    def test_per_ue_sojourns_values(self):
        ds = _dataset([_legal_stream(conn=10.0, idle=50.0)])
        sojourns = per_ue_sojourns(ds, LTE_SPEC)
        np.testing.assert_allclose(sojourns["CONNECTED"], [10.0])
        np.testing.assert_allclose(sojourns["IDLE"], [50.0])

    def test_compare_identical_traces_zero(self):
        ds = _dataset([_legal_stream(ue=f"u{i}", conn=5 + i) for i in range(10)])
        comparison = compare_sojourns(ds, ds, LTE_SPEC)
        assert comparison.connected == 0.0
        assert comparison.idle == 0.0
        assert comparison.average == 0.0

    def test_compare_shifted_traces_positive(self):
        a = _dataset([_legal_stream(ue=f"a{i}", conn=5 + 0.3 * i) for i in range(10)])
        b = _dataset([_legal_stream(ue=f"b{i}", conn=50 + 0.3 * i) for i in range(10)])
        comparison = compare_sojourns(a, b, LTE_SPEC)
        assert comparison.connected == 1.0


class TestBreakdownMetrics:
    def test_difference_signs(self):
        real = _dataset([_legal_stream()])
        ho_heavy = Stream.from_arrays(
            "h", "phone", [0.0, 1.0, 2.0, 3.0], ["SRV_REQ", "HO", "HO", "S1_CONN_REL"]
        )
        synth = _dataset([ho_heavy])
        diffs = breakdown_difference(real, synth)
        assert diffs["HO"] > 0
        assert diffs["SRV_REQ"] < 0

    def test_average_difference_zero_for_identical(self):
        ds = _dataset([_legal_stream()])
        assert average_breakdown_difference(ds, ds) == 0.0


class TestFlowLengthMetrics:
    def test_identical_zero(self):
        ds = _dataset([_legal_stream(ue=f"u{i}", n_cycles=2 + i) for i in range(5)])
        comparison = compare_flow_lengths(ds, ds)
        assert comparison.all_events == 0.0
        assert comparison.for_event("SRV_REQ") == 0.0

    def test_unknown_event_raises(self):
        ds = _dataset([_legal_stream()])
        comparison = compare_flow_lengths(ds, ds)
        with pytest.raises(KeyError):
            comparison.for_event("REGISTER")

    def test_longer_flows_detected(self):
        short = _dataset([_legal_stream(ue=f"s{i}", n_cycles=2) for i in range(8)])
        long = _dataset([_legal_stream(ue=f"l{i}", n_cycles=20) for i in range(8)])
        comparison = compare_flow_lengths(short, long)
        assert comparison.all_events == 1.0


class TestFidelityReport:
    def test_report_assembles_all_metrics(self, phone_trace, phone_trace_alt):
        report = fidelity_report(phone_trace, phone_trace_alt, LTE_SPEC)
        flat = report.as_flat_dict()
        assert set(flat) == {
            "violation_events",
            "violation_streams",
            "sojourn_connected",
            "sojourn_idle",
            "flow_length_all",
            "avg_breakdown_diff",
        }
        # Two same-distribution traces: all distances should be small.
        assert flat["violation_events"] == 0.0
        assert flat["sojourn_connected"] < 0.25
        assert flat["flow_length_all"] < 0.25
        assert "violations" in report.summary()
