"""Memorization n-grams and checkpoint selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    Checkpoint,
    NGramIndex,
    extract_ngrams,
    ngram_repeat_fraction,
    select_checkpoint,
)
from repro.trace import Stream, TraceDataset


def make_stream(ue, deltas, events):
    times = np.cumsum([0.0] + list(deltas))
    return Stream.from_arrays(ue, "phone", times.tolist(), events)


class TestExtractNgrams:
    def test_count_and_contents(self):
        stream = make_stream("u", [5.0, 7.0], ["A", "B", "C"][:3])
        # 3 events -> two 2-grams
        stream = Stream.from_arrays("u", "phone", [0.0, 5.0, 12.0], ["SRV_REQ", "S1_CONN_REL", "SRV_REQ"])
        grams = extract_ngrams(stream, 2)
        assert len(grams) == 2
        events, iats = grams[0]
        assert events == ("SRV_REQ", "S1_CONN_REL")
        np.testing.assert_allclose(iats, [0.0, 5.0])

    def test_n_longer_than_stream(self):
        stream = Stream.from_arrays("u", "phone", [0.0], ["SRV_REQ"])
        assert extract_ngrams(stream, 5) == []

    def test_invalid_n(self):
        stream = Stream.from_arrays("u", "phone", [0.0], ["SRV_REQ"])
        with pytest.raises(ValueError):
            extract_ngrams(stream, 0)


class TestRepeatFraction:
    def _training(self):
        return TraceDataset(
            streams=[
                Stream.from_arrays(
                    "t", "phone", [0.0, 10.0, 30.0, 40.0],
                    ["SRV_REQ", "S1_CONN_REL", "SRV_REQ", "S1_CONN_REL"],
                )
            ]
        )

    def test_exact_copy_fully_repeats(self):
        training = self._training()
        assert ngram_repeat_fraction(training, training, n=2, epsilon=0.1) == 1.0

    def test_within_tolerance_repeats(self):
        training = self._training()
        generated = TraceDataset(
            streams=[
                Stream.from_arrays(
                    "g", "phone", [0.0, 10.5, 31.0, 41.5],
                    ["SRV_REQ", "S1_CONN_REL", "SRV_REQ", "S1_CONN_REL"],
                )
            ]
        )
        assert ngram_repeat_fraction(training, generated, n=2, epsilon=0.10) == 1.0

    def test_outside_tolerance_does_not_repeat(self):
        training = self._training()
        generated = TraceDataset(
            streams=[
                Stream.from_arrays(
                    "g", "phone", [0.0, 20.0, 80.0, 100.0],
                    ["SRV_REQ", "S1_CONN_REL", "SRV_REQ", "S1_CONN_REL"],
                )
            ]
        )
        fraction = ngram_repeat_fraction(training, generated, n=2, epsilon=0.10)
        assert fraction < 1.0

    def test_different_events_never_repeat(self):
        training = self._training()
        generated = TraceDataset(
            streams=[
                Stream.from_arrays(
                    "g", "phone", [0.0, 10.0, 30.0], ["SRV_REQ", "HO", "TAU"]
                )
            ]
        )
        assert ngram_repeat_fraction(training, generated, n=2, epsilon=0.2) == 0.0

    def test_empty_generated_returns_zero(self):
        training = self._training()
        generated = TraceDataset(
            streams=[Stream.from_arrays("g", "phone", [0.0], ["SRV_REQ"])]
        )
        assert ngram_repeat_fraction(training, generated, n=2, epsilon=0.1) == 0.0

    def test_invalid_epsilon(self):
        training = self._training()
        with pytest.raises(ValueError):
            ngram_repeat_fraction(training, training, n=2, epsilon=1.5)

    def test_max_ngrams_subsampling(self):
        training = self._training()
        fraction = ngram_repeat_fraction(
            training, training, n=2, epsilon=0.1, max_ngrams=1
        )
        assert fraction == 1.0

    def test_zero_iats_treated_as_matching(self):
        # First-token IATs are zero on both sides; ratio is undefined but
        # the pair must count as matching.
        training = TraceDataset(
            streams=[Stream.from_arrays("t", "phone", [0.0, 0.0], ["SRV_REQ", "S1_CONN_REL"])]
        )
        assert ngram_repeat_fraction(training, training, n=2, epsilon=0.1) == 1.0

    def test_index_groups_by_events(self):
        index = NGramIndex.build(self._training(), 2)
        assert ("SRV_REQ", "S1_CONN_REL") in index.groups
        assert index.has_repeat(
            ("SRV_REQ", "S1_CONN_REL"), np.array([0.0, 10.0]), epsilon=0.1
        )
        assert not index.has_repeat(("HO", "TAU"), np.array([0.0, 1.0]), epsilon=0.1)


class TestCheckpointSelection:
    def _checkpoint(self, index, time, **metrics):
        return Checkpoint(index=index, wall_time_seconds=time, metrics=metrics)

    def test_picks_best(self):
        checkpoints = [
            self._checkpoint(1, 10.0, a=0.9, b=0.9),
            self._checkpoint(2, 20.0, a=0.1, b=0.1),
            self._checkpoint(3, 30.0, a=0.5, b=0.5),
            self._checkpoint(4, 40.0, a=0.6, b=0.7),
            self._checkpoint(5, 50.0, a=0.8, b=0.8),
        ]
        assert select_checkpoint(checkpoints).index == 2

    def test_earliest_among_ties(self):
        checkpoints = [
            self._checkpoint(1, 10.0, a=0.2),
            self._checkpoint(2, 20.0, a=0.1),
            self._checkpoint(3, 30.0, a=0.15),
            self._checkpoint(4, 40.0, a=0.9),
        ]
        # keep_fraction=0.5 keeps ranks {2, 3}; earliest index wins.
        assert select_checkpoint(checkpoints, keep_fraction=0.5).index == 2

    def test_single_checkpoint(self):
        checkpoint = self._checkpoint(1, 5.0, a=1.0)
        assert select_checkpoint([checkpoint]) is checkpoint

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_checkpoint([])

    def test_inconsistent_metrics_rejected(self):
        with pytest.raises(ValueError, match="same metric keys"):
            select_checkpoint(
                [self._checkpoint(1, 1.0, a=1.0), self._checkpoint(2, 2.0, b=1.0)]
            )
