"""Bootstrap confidence-interval tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import BootstrapCI, bootstrap_max_y_distance, compare_generators


class TestBootstrapCI:
    def test_contains(self):
        ci = BootstrapCI(estimate=0.5, low=0.4, high=0.6, confidence=0.95)
        assert 0.5 in ci
        assert 0.39 not in ci

    def test_overlaps(self):
        a = BootstrapCI(0.5, 0.4, 0.6, 0.95)
        b = BootstrapCI(0.55, 0.5, 0.7, 0.95)
        c = BootstrapCI(0.9, 0.8, 1.0, 0.95)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestBootstrapDistance:
    def test_interval_brackets_estimate(self, rng):
        real = rng.normal(0, 1, 300)
        synth = rng.normal(0.2, 1, 300)
        ci = bootstrap_max_y_distance(real, synth, rng, num_resamples=200)
        assert 0.0 <= ci.low <= ci.high <= 1.0
        # With resampling noise the point estimate sits near the interval;
        # it must not be wildly outside it.
        assert ci.low - 0.1 <= ci.estimate <= ci.high + 0.1

    def test_identical_distributions_small_distance(self, rng):
        sample = rng.normal(0, 1, 500)
        ci = bootstrap_max_y_distance(sample, sample.copy(), rng, num_resamples=100)
        assert ci.high < 0.2

    def test_disjoint_distributions_near_one(self, rng):
        ci = bootstrap_max_y_distance(
            rng.normal(0, 0.1, 200), rng.normal(10, 0.1, 200), rng, num_resamples=100
        )
        assert ci.low > 0.9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_max_y_distance([], [1.0], rng)
        with pytest.raises(ValueError):
            bootstrap_max_y_distance([1.0], [1.0], rng, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_max_y_distance([1.0], [1.0], rng, num_resamples=2)


class TestCompareGenerators:
    def test_clearly_better_generator_detected(self, rng):
        real = rng.normal(0, 1, 400)
        close = rng.normal(0.05, 1, 400)  # generator A: close to real
        far = rng.normal(3.0, 1, 400)  # generator B: far from real
        result = compare_generators(real, close, far, rng, num_resamples=200)
        assert result["difference"] < 0
        assert result["a_significantly_better"]
        assert not result["b_significantly_better"]

    def test_equivalent_generators_not_significant(self, rng):
        real = rng.normal(0, 1, 300)
        a = rng.normal(0.5, 1, 300)
        b = rng.normal(-0.5, 1, 300)
        result = compare_generators(real, a, b, rng, num_resamples=200)
        assert not (
            result["a_significantly_better"] and result["b_significantly_better"]
        )

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            compare_generators([], [1.0], [1.0], rng)
