"""Tokenizer and scaler tests, including hypothesis round-trip properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.statemachine import LTE_EVENTS, NR_EVENTS
from repro.tokenization import LogMinMaxScaler, StreamTokenizer
from repro.trace import Stream


class TestScaler:
    def test_fit_transform_range(self, rng):
        values = rng.exponential(60.0, size=500)
        scaler = LogMinMaxScaler().fit(values)
        scaled = scaler.transform(values)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_inverse_roundtrip(self, rng):
        values = rng.exponential(60.0, size=200)
        scaler = LogMinMaxScaler().fit(values)
        np.testing.assert_allclose(scaler.inverse(scaler.transform(values)), values, rtol=1e-9)

    def test_transform_clips_out_of_range(self):
        scaler = LogMinMaxScaler.from_bounds(1.0, 100.0)
        assert scaler.transform(np.array([0.0]))[0] == 0.0
        assert scaler.transform(np.array([1e6]))[0] == 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LogMinMaxScaler().transform(np.array([1.0]))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError, match="empty"):
            LogMinMaxScaler().fit(np.array([]))

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LogMinMaxScaler().fit(np.array([-1.0, 2.0]))

    def test_degenerate_constant_data(self):
        scaler = LogMinMaxScaler().fit(np.full(10, 5.0))
        assert scaler.transform(np.array([5.0]))[0] == 0.0
        assert scaler.inverse(np.array([0.0]))[0] == pytest.approx(5.0)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            LogMinMaxScaler.from_bounds(10.0, 1.0)

    def test_dict_roundtrip(self):
        scaler = LogMinMaxScaler.from_bounds(0.0, 3600.0)
        clone = LogMinMaxScaler.from_dict(scaler.to_dict())
        values = np.array([0.0, 10.0, 1000.0])
        np.testing.assert_allclose(clone.transform(values), scaler.transform(values))

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=2, max_size=50),
        st.floats(min_value=0.0, max_value=1e5),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_inverse_of_transform(self, values, probe):
        scaler = LogMinMaxScaler().fit(np.asarray(values))
        lo, hi = min(values), max(values)
        clipped_probe = min(max(probe, lo), hi)
        restored = scaler.inverse(scaler.transform(np.array([clipped_probe])))[0]
        assert restored == pytest.approx(clipped_probe, rel=1e-6, abs=1e-6)


def make_stream(times, events):
    return Stream.from_arrays("ue-1", "phone", times, events)


class TestTokenizer:
    @pytest.fixture
    def tokenizer(self):
        tok = StreamTokenizer(LTE_EVENTS)
        tok.scaler = LogMinMaxScaler.from_bounds(0.0, 3600.0)
        return tok

    def test_d_token_is_nine_for_lte(self, tokenizer):
        # The paper's d_token = 6 (events) + 1 (interarrival) + 2 (stop).
        assert tokenizer.d_token == 9

    def test_d_token_for_nr(self):
        assert StreamTokenizer(NR_EVENTS).d_token == 8

    def test_encode_shape_and_onehot(self, tokenizer):
        stream = make_stream([0.0, 5.0, 30.0], ["SRV_REQ", "S1_CONN_REL", "SRV_REQ"])
        tokens = tokenizer.encode(stream)
        assert tokens.shape == (3, 9)
        np.testing.assert_allclose(tokens[:, :6].sum(axis=1), 1.0)
        np.testing.assert_allclose(tokens[:, 7:].sum(axis=1), 1.0)

    def test_first_token_iat_zero_stop_last(self, tokenizer):
        stream = make_stream([100.0, 105.0], ["SRV_REQ", "S1_CONN_REL"])
        tokens = tokenizer.encode(stream)
        assert tokens[0, tokenizer.iat_column] == 0.0
        stops = tokens[:, tokenizer.stop_columns].argmax(axis=1)
        np.testing.assert_array_equal(stops, [0, 1])

    def test_empty_stream_rejected(self, tokenizer):
        with pytest.raises(ValueError, match="empty"):
            tokenizer.encode(Stream(ue_id="x", device_type="phone"))

    def test_decode_roundtrip(self, tokenizer):
        stream = make_stream([0.0, 5.0, 17.0, 44.0], ["ATCH", "S1_CONN_REL", "SRV_REQ", "S1_CONN_REL"])
        tokens = tokenizer.encode(stream)
        restored = tokenizer.decode(tokens, "ue-2", "phone", start_time=0.0)
        assert restored.event_names() == stream.event_names()
        np.testing.assert_allclose(restored.timestamps(), stream.timestamps(), rtol=1e-6)

    def test_decode_start_time_offset(self, tokenizer):
        stream = make_stream([0.0, 10.0], ["SRV_REQ", "S1_CONN_REL"])
        restored = tokenizer.decode(tokenizer.encode(stream), "u", "phone", start_time=500.0)
        assert restored.timestamps()[0] == pytest.approx(500.0)

    def test_decode_shape_validation(self, tokenizer):
        with pytest.raises(ValueError, match="token matrix"):
            tokenizer.decode_fields(np.zeros((3, 7)))

    def test_assemble_field_mismatch(self, tokenizer):
        with pytest.raises(ValueError, match="equal length"):
            tokenizer.assemble(np.array([0]), np.array([0.0, 0.1]), np.array([0]))

    def test_fit_from_dataset(self, phone_trace):
        tok = StreamTokenizer(LTE_EVENTS).fit(phone_trace)
        assert tok.scaler.fitted
        pool = phone_trace.interarrival_pool()
        assert tok.scaler.transform(np.array([pool.max()]))[0] == pytest.approx(1.0)

    def test_dict_roundtrip(self, tokenizer):
        clone = StreamTokenizer.from_dict(tokenizer.to_dict())
        assert clone.vocabulary.names == tokenizer.vocabulary.names
        stream = make_stream([0.0, 9.0], ["HO", "TAU"])
        np.testing.assert_allclose(clone.encode(stream), tokenizer.encode(stream))

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_encode_decode_identity(self, data):
        names = data.draw(
            st.lists(st.sampled_from(list(LTE_EVENTS)), min_size=1, max_size=12)
        )
        deltas = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=3000),
                min_size=len(names),
                max_size=len(names),
            )
        )
        times = np.cumsum(np.asarray(deltas, dtype=float))
        tok = StreamTokenizer(LTE_EVENTS)
        tok.scaler = LogMinMaxScaler.from_bounds(0.0, 3600.0)
        stream = make_stream(times.tolist(), names)
        restored = tok.decode(tok.encode(stream), "u", "phone", start_time=times[0])
        assert restored.event_names() == names
        np.testing.assert_allclose(restored.timestamps(), times, rtol=1e-6, atol=1e-6)
