"""Cross-module integration tests: full pipelines through the public API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import NetShare, NetShareConfig, SMM1Generator
from repro.core import GeneratorPackage
from repro.mcn import AutoscalePolicy, MCNSimulator, simulate_autoscaling
from repro.metrics import fidelity_report, ngram_repeat_fraction, violation_stats
from repro.statemachine import LTE_SPEC, NR_SPEC, replay_dataset
from repro.trace import (
    SyntheticTraceConfig,
    generate_trace,
    load_jsonl,
    save_jsonl,
)


class TestCPTGPTPipeline:
    def test_generate_replay_metrics(self, tiny_trained_package, phone_trace_alt):
        """Train -> generate -> replay -> full fidelity report."""
        generated = tiny_trained_package.generate(
            80, np.random.default_rng(8), start_time=72000.0
        )
        report = fidelity_report(phone_trace_alt, generated, LTE_SPEC)
        flat = report.as_flat_dict()
        # Plumbing guarantees (quality is benchmarked elsewhere): every
        # metric exists and is a valid probability/distance.
        for key, value in flat.items():
            assert 0.0 <= value <= 1.0, key
        assert sum(report.breakdown_diff.values()) == pytest.approx(0.0, abs=1e-9)

    def test_generated_trace_roundtrips_through_jsonl(
        self, tiny_trained_package, tmp_path
    ):
        generated = tiny_trained_package.generate(20, np.random.default_rng(0))
        path = tmp_path / "generated.jsonl"
        save_jsonl(generated, path)
        loaded = load_jsonl(path)
        assert len(loaded) == 20
        stats_direct = violation_stats(generated, LTE_SPEC)
        stats_loaded = violation_stats(loaded, LTE_SPEC)
        assert stats_direct.event_rate == stats_loaded.event_rate

    def test_package_roundtrip_then_downstream_mcn(
        self, tiny_trained_package, tmp_path
    ):
        """Released artifact -> loaded by a 'user' -> drives the MCN sim."""
        path = tmp_path / "release.npz"
        tiny_trained_package.save(path)
        user_package = GeneratorPackage.load(path)
        workload = user_package.generate(50, np.random.default_rng(3))
        report = MCNSimulator(workers=4, seed=0).run(workload)
        assert report.num_events == workload.total_events
        assert report.utilization <= 1.0

    def test_memorization_pipeline(self, tiny_trained_package, phone_trace):
        generated = tiny_trained_package.generate(40, np.random.default_rng(5))
        fraction = ngram_repeat_fraction(
            phone_trace, generated, n=20, epsilon=0.2, max_ngrams=500
        )
        # Table 11's headline: length-20 windows are never memorized.
        assert fraction == pytest.approx(0.0, abs=0.01)


class TestBaselinePipelines:
    def test_smm_to_autoscaler(self, phone_trace, rng):
        generator = SMM1Generator.fit(phone_trace, "phone")
        synthetic = generator.generate(100, rng, start_time=0.0)
        trace = simulate_autoscaling(
            synthetic, AutoscalePolicy(target_utilization=0.7), window_seconds=300.0
        )
        assert trace.peak_workers >= 1

    def test_netshare_to_metrics(self, phone_trace, phone_trace_alt, fitted_tokenizer):
        model = NetShare(
            NetShareConfig(max_len=100, batch_generation=5, latent_dim=8, hidden_size=16),
            fitted_tokenizer,
            np.random.default_rng(0),
        )
        model.train(phone_trace, epochs=2, batch_size=32)
        generated = model.generate(60, np.random.default_rng(1), "phone")
        report = fidelity_report(phone_trace_alt, generated, LTE_SPEC)
        assert 0.0 <= report.violations.event_rate <= 1.0

    def test_four_generators_one_capture(self, micro_workbench):
        """The Workbench's full cross-product stays consistent."""
        sizes = set()
        for generator in ("SMM-1", "SMM-20k", "NetShare", "CPT-GPT"):
            trace = micro_workbench.generated(generator, "phone")
            sizes.add(len(trace))
        assert sizes == {micro_workbench.scale.generated_streams}


class TestFiveGPipeline:
    def test_end_to_end_5g(self, tmp_path):
        """5G trace -> tokenizer (d_token 8) -> train -> generate -> replay."""
        from repro.core import CPTGPT, CPTGPTConfig, TrainingConfig, train
        from repro.statemachine import NR_EVENTS
        from repro.tokenization import StreamTokenizer

        trace = generate_trace(
            SyntheticTraceConfig(num_ues=80, technology="5G", seed=17)
        )
        tokenizer = StreamTokenizer(NR_EVENTS).fit(trace)
        assert tokenizer.d_token == 8
        config = CPTGPTConfig(
            num_event_types=5, d_model=16, num_layers=1, num_heads=2,
            d_ff=32, head_hidden=32, max_len=96,
        )
        model = CPTGPT(config, np.random.default_rng(0))
        train(model, trace, tokenizer, TrainingConfig(epochs=2, batch_size=32, seed=0))
        package = GeneratorPackage(
            model, tokenizer, trace.initial_event_distribution(), "phone"
        )
        generated = package.generate(30, np.random.default_rng(1))
        replay = replay_dataset(generated.replay_pairs(), NR_SPEC)
        assert replay.counted_events > 0
        assert all("TAU" not in s.event_names() for s in generated)


class TestSplitsIntegration:
    def test_split_by_ue_partition(self, phone_trace):
        from repro.trace import split_by_ue

        train, test = split_by_ue(phone_trace, train_fraction=0.7)
        assert len(train) + len(test) == len(phone_trace)
        assert {s.ue_id for s in train}.isdisjoint({s.ue_id for s in test})
        assert 0.4 < len(train) / len(phone_trace) < 0.95

    def test_split_by_ue_deterministic(self, phone_trace):
        from repro.trace import split_by_ue

        a_train, _ = split_by_ue(phone_trace, 0.5, salt="x")
        b_train, _ = split_by_ue(phone_trace, 0.5, salt="x")
        assert [s.ue_id for s in a_train] == [s.ue_id for s in b_train]

    def test_split_by_ue_bad_fraction(self, phone_trace):
        from repro.trace import split_by_ue

        with pytest.raises(ValueError):
            split_by_ue(phone_trace, 1.0)

    def test_split_by_time_boundary(self, phone_trace):
        from repro.trace import split_by_time

        times = np.concatenate([s.timestamps() for s in phone_trace if len(s)])
        boundary = float(np.median(times))
        left, right = split_by_time(phone_trace, boundary)
        for stream in left:
            assert stream.timestamps().max() < boundary
        for stream in right:
            assert stream.timestamps().min() >= boundary

    def test_kfold_partition(self, phone_trace):
        from repro.trace import kfold_by_ue

        folds = kfold_by_ue(phone_trace, 4)
        assert sum(len(f) for f in folds) == len(phone_trace)
        ids = [frozenset(s.ue_id for s in fold) for fold in folds]
        for i in range(4):
            for j in range(i + 1, 4):
                assert ids[i].isdisjoint(ids[j])

    def test_kfold_requires_two(self, phone_trace):
        from repro.trace import kfold_by_ue

        with pytest.raises(ValueError):
            kfold_by_ue(phone_trace, 1)
