"""Columnar chunk merge: bit-for-bit parity with the heap merge it replaced.

The contract this file pins down: every consumer of the merged timeline
— the batch :func:`merge_buffers` lexsort, :meth:`Workload.chunks`, and
the chunk-native simulator/autoscaler folds — reproduces the
``heapq.merge`` reference ordering *exactly*, for any chunk size,
worker count, tie pattern, or topology annotation.  Plus the memory and
validation regressions that rode along: partial chunks must not pin
their source buffer alive, and cell annotations must never be silently
dropped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.scenario import ScenarioSpec
from repro.core.chunks import MergedChunk, MergeTables
from repro.mcn import AutoscalePolicy, simulate_autoscaling
from repro.service import ChunkMerger
from repro.workload import (
    Cohort,
    UEPopulation,
    Workload,
    get_workload,
    merge_buffers,
    merge_timelines,
)
from repro.workload.timeline import TimelineChunk, chunk_buffer, decode_buffer

_KEY = lambda e: (e.timestamp, e.cohort, e.ue_id)  # noqa: E731


def _population() -> UEPopulation:
    return UEPopulation(
        name="chunk-tiny",
        cohorts=(
            Cohort(
                name="base",
                scenario=ScenarioSpec(name="chunk-base", num_ues=40, seed=1),
                num_ues=10,
            ),
            Cohort(
                name="surge",
                scenario=ScenarioSpec(name="chunk-surge", num_ues=40, seed=2),
                num_ues=6,
            ),
        ),
    )


@pytest.fixture(scope="module")
def workload() -> Workload:
    return Workload(_population(), seed=5, shard_ues=4)


@pytest.fixture(scope="module")
def heap_events(workload):
    """The per-event heap-merge reference ordering."""
    return list(workload.events())


def _decoded(chunks) -> list:
    return [event for chunk in chunks for event in chunk.decode()]


# ----------------------------------------------------------------------
# Batch path: Workload.chunks / merge_buffers
# ----------------------------------------------------------------------
class TestBatchParity:
    @pytest.mark.parametrize("chunk_events", [7, 500, 65536])
    def test_chunks_decode_bit_identical(
        self, workload, heap_events, chunk_events
    ):
        chunks = workload.chunks(chunk_events=chunk_events)
        assert all(c.num_events <= chunk_events for c in chunks)
        decoded = _decoded(chunks)
        assert decoded == heap_events

    def test_worker_count_never_changes_chunks(self, heap_events):
        parallel = Workload(_population(), seed=5, shard_ues=4, num_workers=3)
        assert _decoded(parallel.chunks(chunk_events=256)) == heap_events

    def test_chunk_columns_are_globally_sorted(self, workload):
        chunks = workload.chunks(chunk_events=512)
        times = np.concatenate([c.times for c in chunks])
        assert np.all(np.diff(times) >= 0)
        decoded = _decoded(chunks)
        assert decoded == sorted(decoded, key=_KEY)

    def test_topology_chunks_match_heap_merge(self):
        population = get_workload("handover-storm").scaled(0.02)
        chunked = Workload(population, seed=3)
        reference = list(Workload(population, seed=3).events())
        decoded = _decoded(chunked.chunks(chunk_events=300))
        assert decoded == reference
        # topology runs decode to 5-tuples with the cell name attached
        assert all(len(event) == 5 for event in decoded)


# ----------------------------------------------------------------------
# Synthetic tie patterns, straight against heapq.merge
# ----------------------------------------------------------------------
def _buf(times, ues, codes, ue_ids, names, cells=None):
    return (
        np.asarray(times, dtype=np.float64),
        np.asarray(ues, dtype=np.int64),
        np.asarray(codes, dtype=np.int64),
        tuple(ue_ids),
        tuple(names),
        None if cells is None else np.asarray(cells, dtype=np.int16),
    )


class TestSyntheticTieBreaks:
    def test_full_key_ties_resolve_by_shard_order(self):
        # Identical (timestamp, cohort, ue_id) on both shards: the heap
        # merge resolves by source index and keeps within-shard order.
        buffers = [
            _buf([1.0, 1.0, 2.0], [0, 0, 1], [0, 1, 0], ("u", "v"), ("A", "B")),
            _buf([1.0, 2.0], [0, 0], [0, 0], ("u",), ("C",)),
        ]
        cohorts = ["a", "a"]
        reference = list(
            merge_timelines(
                [decode_buffer(b, c) for b, c in zip(buffers, cohorts)]
            )
        )
        for chunk_events in (1, 2, 65536):
            merged = merge_buffers(
                buffers, cohorts, chunk_events=chunk_events
            )
            assert _decoded(merged) == reference

    def test_cohort_breaks_timestamp_ties_across_shards(self):
        buffers = [
            _buf([5.0], [0], [0], ("z",), ("E1",)),
            _buf([5.0], [0], [0], ("a",), ("E2",)),
        ]
        cohorts = ["zeta", "alpha"]
        reference = list(
            merge_timelines(
                [decode_buffer(b, c) for b, c in zip(buffers, cohorts)]
            )
        )
        merged = merge_buffers(buffers, cohorts)
        assert _decoded(merged) == reference
        assert _decoded(merged)[0].cohort == "alpha"

    def test_cells_round_trip_through_merge(self):
        cell_names = ("cell-0", "cell-1")
        buffers = [
            _buf([1.0, 3.0], [0, 0], [0, 0], ("u",), ("A",), cells=[0, 1]),
            _buf([2.0], [0], [0], ("v",), ("B",), cells=[1]),
        ]
        cohorts = ["a", "b"]
        reference = list(
            merge_timelines(
                [
                    decode_buffer(b, c, cell_names)
                    for b, c in zip(buffers, cohorts)
                ]
            )
        )
        merged = merge_buffers(buffers, cohorts, cell_names=cell_names)
        assert _decoded(merged) == reference
        assert [e.cell for e in _decoded(merged)] == [
            "cell-0", "cell-1", "cell-1",
        ]


# ----------------------------------------------------------------------
# Incremental merger: columnar emission parity under arrival orderings
# ----------------------------------------------------------------------
class TestIncrementalChunks:
    def _shard_chunks(self, engine, chunk_events):
        return [
            list(engine.shard_chunk_stream(s, chunk_events=chunk_events))
            for s in range(engine.num_shards)
        ]

    def _run(self, engine, chunk_events, arrival, max_events=None):
        """Feed chunks per ``arrival`` (shard index sequence), popping
        columnar output after every delivery."""
        streams = self._shard_chunks(engine, chunk_events)
        merger = ChunkMerger(engine.num_shards, engine._cell_names())
        out = []
        for shard in arrival:
            merger.add_chunk(streams[shard].pop(0))
            if not streams[shard]:
                merger.finish_shard(shard)
            while True:
                chunks = merger.pop_ready_chunks(max_events)
                if not chunks:
                    break
                out.extend(chunks)
        assert merger.exhausted()
        assert merger.merged_total == sum(c.num_events for c in out)
        return out

    def _arrival(self, streams, order_fn):
        counts = [len(s) for s in streams]
        return order_fn(counts)

    @pytest.mark.parametrize("chunk_events", [16, 128])
    def test_round_robin_arrival_matches_heap(
        self, workload, heap_events, chunk_events
    ):
        counts = [
            len(s) for s in self._shard_chunks(workload, chunk_events)
        ]
        arrival = []
        remaining = list(counts)
        while any(remaining):
            for s, left in enumerate(remaining):
                if left:
                    arrival.append(s)
                    remaining[s] -= 1
        merged = self._run(workload, chunk_events, arrival)
        assert _decoded(merged) == heap_events

    def test_reverse_shard_at_a_time_matches_heap(self, workload, heap_events):
        counts = [len(s) for s in self._shard_chunks(workload, 64)]
        arrival = [
            s for s in reversed(range(len(counts))) for _ in range(counts[s])
        ]
        merged = self._run(workload, 64, arrival)
        assert _decoded(merged) == heap_events

    def test_max_events_cap_preserves_order(self, workload, heap_events):
        counts = [len(s) for s in self._shard_chunks(workload, 64)]
        arrival = [s for s in range(len(counts)) for _ in range(counts[s])]
        merged = self._run(workload, 64, arrival, max_events=37)
        assert all(c.num_events <= 37 for c in merged)
        assert _decoded(merged) == heap_events

    def test_late_registration_keeps_tie_order(self):
        # Shard 1 registers its (identical) UE string first; the rank
        # rebuild must still put shard 0 ahead on full-key ties.
        def one(shard):
            return TimelineChunk(
                shard=shard,
                seq=0,
                cohort="c",
                times=np.array([1.0, 1.0]),
                ue_codes=np.zeros(2, dtype=np.int64),
                event_codes=np.array([0, 1], dtype=np.int64),
                ue_ids=("u",),
                event_names=(f"S{shard}.A", f"S{shard}.B"),
                cells=None,
            )

        merger = ChunkMerger(2)
        merger.add_chunk(one(1))
        merger.finish_shard(1)
        assert merger.pop_ready_chunks() == []  # shard 0 still starved
        merger.add_chunk(one(0))
        merger.finish_shard(0)
        decoded = _decoded(merger.pop_ready_chunks())
        assert [e.event for e in decoded] == [
            "S0.A", "S0.B", "S1.A", "S1.B",
        ]


# ----------------------------------------------------------------------
# Chunk-native consumers: simulator and autoscaler folds
# ----------------------------------------------------------------------
class TestConsumerParity:
    def test_simulate_chunks_match_event_objects(self, workload, heap_events):
        chunked = workload.simulate(sim_seed=3)
        reference = workload.simulate(sim_seed=3, events=iter(heap_events))
        assert chunked.num_events == reference.num_events
        assert chunked.dropped_events == reference.dropped_events
        assert (
            chunked.peak_connected_contexts
            == reference.peak_connected_contexts
        )
        assert set(chunked.latencies_ms) == set(reference.latencies_ms)
        for name, latencies in reference.latencies_ms.items():
            np.testing.assert_array_equal(
                chunked.latencies_ms[name], latencies
            )

    def test_autoscale_chunks_match_event_objects(self, workload, heap_events):
        policy = AutoscalePolicy()
        chunked = workload.autoscale(policy)
        reference = workload.autoscale(policy, events=iter(heap_events))
        assert chunked.offered_load == reference.offered_load
        assert chunked.workers == reference.workers
        assert chunked.utilization == reference.utilization


# ----------------------------------------------------------------------
# Memory regression: partial chunks must not pin the shard buffer
# ----------------------------------------------------------------------
class TestChunkMemory:
    def test_partial_chunks_are_copies(self):
        buffer = _buf(
            np.arange(10, dtype=np.float64),
            np.zeros(10, dtype=np.int64),
            np.zeros(10, dtype=np.int64),
            ("u",),
            ("A",),
        )
        chunks = list(
            chunk_buffer(buffer, shard=0, cohort="a", chunk_events=4)
        )
        assert len(chunks) == 3
        for chunk in chunks:
            # A view would keep the whole shard buffer alive for as long
            # as any one chunk is retained in a ring or merge backlog.
            assert chunk.times.base is None
            assert chunk.ue_codes.base is None
            assert chunk.event_codes.base is None

    def test_whole_buffer_chunk_shares_storage(self):
        buffer = _buf(
            np.arange(5, dtype=np.float64),
            np.zeros(5, dtype=np.int64),
            np.zeros(5, dtype=np.int64),
            ("u",),
            ("A",),
        )
        (chunk,) = chunk_buffer(buffer, shard=0, cohort="a", chunk_events=8)
        assert chunk.times is buffer[0]
        assert chunk.ue_codes is buffer[1]


# ----------------------------------------------------------------------
# Cell annotations must never be silently dropped
# ----------------------------------------------------------------------
class TestCellValidation:
    def _cell_buffer(self):
        return _buf([1.0], [0], [0], ("u",), ("A",), cells=[0])

    def test_decode_buffer_requires_cell_names(self):
        with pytest.raises(ValueError, match="cell annotations"):
            list(decode_buffer(self._cell_buffer(), "a"))

    def test_merge_buffers_requires_cell_names(self):
        with pytest.raises(ValueError, match="cell annotations"):
            merge_buffers([self._cell_buffer()], ["a"])

    def test_chunk_merger_requires_cell_names(self):
        merger = ChunkMerger(1)
        chunk = TimelineChunk(
            shard=0,
            seq=0,
            cohort="a",
            times=np.array([1.0]),
            ue_codes=np.zeros(1, dtype=np.int64),
            event_codes=np.zeros(1, dtype=np.int64),
            ue_ids=("u",),
            event_names=("A",),
            cells=np.zeros(1, dtype=np.int16),
        )
        with pytest.raises(ValueError, match="cell annotations"):
            merger.add_chunk(chunk)

    def test_merged_chunk_decode_requires_cell_names(self):
        tables = MergeTables(None)
        tables.add_ues("a", ("u",), 0)
        chunk = MergedChunk(
            times=np.array([1.0]),
            cohorts=np.zeros(1, dtype=np.int32),
            ues=np.zeros(1, dtype=np.int64),
            events=tables.event_codes(("A",)),
            cells=np.zeros(1, dtype=np.int16),
            tables=tables,
        )
        with pytest.raises(ValueError, match="cell annotations"):
            list(chunk.decode())
