"""Event-time merge correctness, parity, determinism, memory, pacing."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.api.scenario import ScenarioSpec
from repro.mcn import MCNSimulator, AutoscalePolicy, simulate_autoscaling
from repro.workload import (
    Cohort,
    FlashCrowdShape,
    StepShape,
    TimelineEvent,
    UEPopulation,
    Workload,
    merge_timelines,
    pace,
)

_KEY = lambda e: (e.timestamp, e.cohort, e.ue_id)  # noqa: E731


def _population() -> UEPopulation:
    return UEPopulation(
        name="tiny",
        cohorts=(
            Cohort(
                name="base",
                scenario=ScenarioSpec(name="base-spec", num_ues=40, seed=1),
                num_ues=14,
            ),
            Cohort(
                name="surge",
                scenario=ScenarioSpec(name="surge-spec", num_ues=40, seed=2),
                num_ues=10,
                shape=FlashCrowdShape(
                    start=20 * 3600.0 + 600.0,
                    ramp_seconds=300.0,
                    hold_seconds=600.0,
                    peak=6.0,
                ),
            ),
            Cohort(
                name="drip",
                scenario=ScenarioSpec(name="drip-spec", num_ues=40, seed=3),
                num_ues=6,
                shape=StepShape(at=20 * 3600.0 + 1800.0, before=1.0, after=0.3),
                shape_mode="thin",
            ),
        ),
    )


@pytest.fixture(scope="module")
def workload() -> Workload:
    """One fitted engine shared by the module (generators fit once)."""
    return Workload(_population(), seed=5)


class TestMerge:
    def test_globally_ordered(self, workload):
        events = list(workload.events())
        assert events
        assert events == sorted(events, key=_KEY)

    def test_ties_broken_by_cohort_then_ue(self):
        a = [
            TimelineEvent(1.0, "a", "u2", "SRV_REQ"),
            TimelineEvent(3.0, "a", "u1", "SRV_REQ"),
        ]
        b = [
            TimelineEvent(1.0, "b", "u1", "ATCH"),
            TimelineEvent(1.0, "b", "u3", "ATCH"),
        ]
        c = [TimelineEvent(1.0, "a", "u9", "TAU")]
        merged = list(merge_timelines([iter(a), iter(b), iter(c)]))
        assert merged == sorted(a + b + c, key=_KEY)
        # (cohort, ue_id) decides the 1.0 tie, regardless of source order.
        assert [e.ue_id for e in merged[:4]] == ["u2", "u9", "u1", "u3"]

    def test_same_ue_tie_preserves_stream_order(self):
        source = [
            TimelineEvent(5.0, "a", "u1", "SRV_REQ"),
            TimelineEvent(5.0, "a", "u1", "S1_CONN_REL"),
        ]
        merged = list(merge_timelines([iter(source)]))
        assert [e.event for e in merged] == ["SRV_REQ", "S1_CONN_REL"]

    def test_matches_materialize_then_sort(self, workload):
        """The streaming merge equals flattening + one global sort."""
        streamed = list(workload.events())
        dataset = workload.materialize()
        flattened = [
            (event.timestamp, stream.ue_id, event.event)
            for stream in dataset
            for event in stream
        ]
        flattened.sort(key=lambda item: (item[0], item[1]))
        assert len(streamed) == len(flattened)
        for got, want in zip(streamed, flattened):
            assert got.timestamp == want[0]
            assert f"{got.cohort}/{got.ue_id}" == want[1]
            assert got.event == want[2]

    def test_bounded_memory_under_large_fan_in(self):
        """The merge holds at most one pending event per source."""
        num_sources, per_source = 64, 250
        produced = [0]

        def source(index: int):
            for step in range(per_source):
                produced[0] += 1
                yield TimelineEvent(
                    float(step * num_sources + index), f"c{index:03d}", "u", "TAU"
                )

        merged = merge_timelines([source(i) for i in range(num_sources)])
        consumed = 0
        for _ in merged:
            consumed += 1
            assert produced[0] - consumed <= num_sources + 1
        assert consumed == num_sources * per_source


class TestDeterminism:
    def test_identical_across_num_workers(self, workload):
        inline = list(workload.events())
        sharded = list(Workload(_population(), seed=5, num_workers=3).events())
        assert inline == sharded

    def test_seed_changes_timeline(self, workload):
        other = list(Workload(_population(), seed=6).events())
        assert other != list(workload.events())

    def test_repeated_runs_identical(self, workload):
        assert list(workload.events()) == list(workload.events())

    def test_shard_plan_part_of_identity(self, workload):
        finer = Workload(_population(), seed=5, shard_ues=4)
        events = list(finer.events())
        # Still a valid ordered timeline, same total UE population size…
        assert events == sorted(events, key=_KEY)
        # …but a different RNG fan-out, hence a different timeline.
        assert events != list(workload.events())


class TestConsumers:
    def test_simulator_parity_with_materialized_path(self, workload):
        streaming = MCNSimulator(workers=4, seed=0).run(workload.events())
        materialized = MCNSimulator(workers=4, seed=0).run(workload.materialize())
        assert streaming.num_events == materialized.num_events
        assert streaming.duration_seconds == materialized.duration_seconds
        assert streaming.utilization == materialized.utilization
        assert (
            streaming.peak_connected_contexts
            == materialized.peak_connected_contexts
        )
        assert set(streaming.latencies_ms) == set(materialized.latencies_ms)
        for event, values in streaming.latencies_ms.items():
            np.testing.assert_array_equal(values, materialized.latencies_ms[event])

    def test_autoscale_parity_with_materialized_path(self, workload):
        policy = AutoscalePolicy(target_utilization=0.5, max_step=2)
        streaming = simulate_autoscaling(
            workload.events(), policy, window_seconds=600.0
        )
        materialized = simulate_autoscaling(
            workload.materialize(), policy, window_seconds=600.0
        )
        assert streaming.offered_load == materialized.offered_load
        assert streaming.workers == materialized.workers
        assert streaming.utilization == materialized.utilization

    def test_engine_shortcuts(self, workload):
        report = workload.simulate(workers=4)
        assert report.num_events == sum(1 for _ in workload.events())
        trace = workload.autoscale(window_seconds=600.0)
        assert len(trace.workers) > 0

    def test_simulator_accepts_plain_triples(self):
        events = [(0.0, "u1", "SRV_REQ"), (1.0, "u1", "S1_CONN_REL")]
        report = MCNSimulator(workers=1, seed=0).run(iter(events))
        assert report.num_events == 2
        assert report.peak_connected_contexts == 1


class TestEngine:
    def test_name_resolution_and_validation(self):
        engine = Workload("stadium-flash-crowd")
        assert engine.population.name == "stadium-flash-crowd"
        with pytest.raises(ValueError):
            Workload(_population(), shard_ues=0)
        with pytest.raises(ValueError):
            Workload(_population(), num_workers=0)

    def test_zero_ue_cohort_contributes_nothing(self):
        population = UEPopulation(
            name="sparse",
            cohorts=(
                Cohort(
                    name="live",
                    scenario=ScenarioSpec(name="live-spec", num_ues=30, seed=4),
                    num_ues=5,
                ),
                Cohort(
                    name="ghost",
                    scenario=ScenarioSpec(name="ghost-spec", num_ues=30, seed=5),
                    num_ues=0,
                ),
            ),
        )
        events = list(Workload(population, seed=1).events())
        assert events
        assert all(e.cohort == "live" for e in events)

    def test_materialize_carries_vocabulary(self, workload):
        dataset = workload.materialize()
        assert dataset.vocabulary is workload.population.vocabulary
        dataset.validate()

    def test_injected_generators_are_used(self):
        from repro import Session

        session = Session("phone-evening").synthesize().fit("smm-1")
        population = UEPopulation(
            name="injected",
            cohorts=(
                Cohort(name="only", scenario="phone-evening", num_ues=4),
            ),
        )
        engine = session.workload(population, seed=2)
        assert engine.generator(population.cohorts[0]) is session.generator()
        assert sum(1 for _ in engine.events()) > 0


class TestPace:
    def test_open_loop_schedule(self):
        events = [
            TimelineEvent(0.0, "a", "u", "TAU"),
            TimelineEvent(10.0, "a", "u", "TAU"),
            TimelineEvent(30.0, "a", "u", "TAU"),
        ]
        now = [100.0]
        sleeps: list[float] = []

        def clock() -> float:
            return now[0]

        def sleep(delay: float) -> None:
            sleeps.append(delay)
            now[0] += delay

        paced = list(pace(events, speed=10.0, clock=clock, sleep=sleep))
        assert paced == events
        assert sleeps == pytest.approx([1.0, 2.0])

    def test_infinite_speed_never_sleeps(self):
        events = [TimelineEvent(float(t), "a", "u", "TAU") for t in range(5)]
        paced = list(
            pace(events, speed=float("inf"), sleep=lambda _: pytest.fail("slept"))
        )
        assert len(paced) == 5

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            list(pace([], speed=0.0))

    def test_lazy(self):
        def endless():
            for t in itertools.count():
                yield TimelineEvent(float(t), "a", "u", "TAU")

        # An infinite source works because pacing is a generator.
        paced = pace(endless(), speed=float("inf"))
        assert next(iter(paced)).timestamp == 0.0


class TestPaceEdgeCases:
    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            list(pace([], speed=-2.0))

    def test_empty_timeline_yields_nothing(self):
        def clock() -> float:  # pragma: no cover - must never run
            pytest.fail("clock consulted for an empty timeline")

        assert list(pace([], clock=clock, sleep=lambda _: None)) == []

    def test_single_event_released_immediately(self):
        sleeps: list[float] = []
        events = [TimelineEvent(42.0, "a", "u", "TAU")]
        paced = list(pace(events, speed=1.0, sleep=sleeps.append))
        assert paced == events
        assert sleeps == []

    def test_zero_span_timeline_never_sleeps(self):
        events = [TimelineEvent(7.0, "a", "u", "TAU") for _ in range(4)]
        paced = list(
            pace(events, speed=0.001, sleep=lambda _: pytest.fail("slept"))
        )
        assert len(paced) == 4

    def test_late_consumer_never_gets_negative_sleep(self):
        # The wall clock jumps far ahead of schedule: pace must not
        # sleep at all (open loop), and certainly not sleep(<0).
        now = [0.0]

        def clock() -> float:
            now[0] += 100.0
            return now[0]

        sleeps: list[float] = []
        events = [TimelineEvent(float(t), "a", "u", "TAU") for t in range(5)]
        assert len(list(pace(events, speed=1.0, clock=clock, sleep=sleeps.append))) == 5
        assert sleeps == []


class TestPaceHardening:
    def test_backward_clock_jump_shifts_anchor(self):
        # NTP-style step back between events: the schedule must shift
        # with the clock instead of stalling behind a future anchor.
        events = [
            TimelineEvent(0.0, "a", "u", "TAU"),
            TimelineEvent(10.0, "a", "u", "TAU"),
            TimelineEvent(20.0, "a", "u", "TAU"),
        ]
        now = [100.0]
        calls = [0]
        sleeps: list[float] = []
        slips: list[tuple] = []

        def clock() -> float:
            calls[0] += 1
            if calls[0] == 3:  # jump back 5s before the third event
                now[0] -= 5.0
            return now[0]

        def sleep(delay: float) -> None:
            sleeps.append(delay)
            now[0] += delay

        paced = list(
            pace(
                events,
                speed=10.0,
                clock=clock,
                sleep=sleep,
                on_slip=lambda *args: slips.append(args),
            )
        )
        assert paced == events
        # Both inter-event gaps still pace at 1s despite the jump.
        assert sleeps == pytest.approx([1.0, 1.0])
        assert slips == [(0, 5.0, "clock")]

    def test_burst_cap_reanchors_and_reports_slippage(self):
        # A consumer stall leaves every event overdue: the catch-up
        # burst must stop at max_burst, declare the lag as slippage,
        # and resume pacing from *now*.
        events = [TimelineEvent(float(t), "a", "u", "TAU") for t in range(10)]
        now = [0.0]
        calls = [0]
        sleeps: list[float] = []
        slips: list[tuple] = []

        def clock() -> float:
            calls[0] += 1
            if calls[0] == 1:
                return 0.0  # anchor
            return now[0]

        def sleep(delay: float) -> None:
            sleeps.append(delay)
            now[0] += delay

        now[0] = 100.0  # the consumer resumes 100s behind schedule
        paced = list(
            pace(
                events,
                speed=1.0,
                clock=clock,
                sleep=sleep,
                max_burst=3,
                on_slip=lambda *args: slips.append(args),
            )
        )
        assert paced == events
        assert slips == [(3, pytest.approx(97.0), "burst")]
        # Post-re-anchor, the remaining six gaps pace normally again.
        assert sleeps == pytest.approx([1.0] * 6)

    def test_no_cap_releases_whole_backlog(self):
        events = [TimelineEvent(float(t), "a", "u", "TAU") for t in range(5)]
        calls = [0]

        def clock() -> float:
            calls[0] += 1
            return 0.0 if calls[0] == 1 else 1000.0

        slips: list[tuple] = []
        paced = list(
            pace(
                events,
                speed=1.0,
                clock=clock,
                sleep=lambda _: pytest.fail("slept"),
                on_slip=lambda *args: slips.append(args),
            )
        )
        assert len(paced) == 5
        assert slips == []  # no cap: a burst is not slippage

    def test_invalid_max_burst_rejected(self):
        with pytest.raises(ValueError, match="max_burst"):
            list(pace([], max_burst=0))


class TestRunValidators:
    def test_run_matches_materialized_violation_stats(self, workload):
        from repro.metrics import violation_stats
        from repro.statemachine import LTE_SPEC
        from repro.validate import OracleValidator

        validator = OracleValidator(LTE_SPEC)
        result = workload.run(validators=(validator,))
        report = result.report("conformance")
        stats = violation_stats(workload.materialize(), LTE_SPEC, top_k=50)
        assert report.event_rate == stats.event_rate
        assert report.stream_rate == stats.stream_rate
        assert report.top_patterns[:50] == stats.top_patterns
        assert result.num_events == report.total_events
        assert set(report.per_cohort) == {"base", "surge", "drip"}

    def test_run_with_simulation(self, workload):
        from repro.statemachine import LTE_SPEC
        from repro.validate import OracleValidator, StatsValidator

        result = workload.run(
            validators=(OracleValidator(LTE_SPEC), StatsValidator()),
            simulate=True,
            sim_workers=2,
        )
        assert result.simulation is not None
        assert result.simulation.num_events == result.num_events
        sketch = result.report("stats")
        assert sketch.num_events == result.num_events

    def test_unknown_report_name_raises(self, workload):
        result = workload.run()
        with pytest.raises(KeyError, match="no validator"):
            result.report("conformance")

    def test_workers_do_not_change_tallies(self):
        from repro.statemachine import LTE_SPEC
        from repro.validate import OracleValidator

        tallies = []
        for num_workers in (1, 3):
            engine = Workload(_population(), seed=5, num_workers=num_workers,
                              shard_ues=8)
            validator = OracleValidator(LTE_SPEC)
            engine.run(validators=(validator,))
            tally = validator.tally
            tallies.append(
                (tally.counted_events, tally.violating_events, tally.streams)
            )
        assert tallies[0] == tallies[1]

    def test_simulator_tee_sees_all_offered_events(self, workload):
        from repro.statemachine import LTE_SPEC
        from repro.validate import OracleValidator

        tee = OracleValidator(LTE_SPEC)
        # queue_limit=0 drops every arrival: the harshest possible queue.
        report = MCNSimulator(workers=2, queue_limit=0).run(
            workload.events(), tee=tee
        )
        # Drops happen with such a tight queue, yet the tee sees every
        # offered arrival (conformance is judged pre-drop).
        assert report.dropped_events > 0
        assert tee.tally.total_events == report.num_events + report.dropped_events
