"""Load-shape intensities, composition, and the warp/thin mechanisms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.device import get_profile
from repro.workload import (
    FLAT,
    ComposedShape,
    DiurnalShape,
    FlashCrowdShape,
    FlatShape,
    RampShape,
    RecoveryStormShape,
    StepShape,
)


class TestIntensities:
    def test_flat_is_identity(self):
        assert FLAT.intensity(0.0) == 1.0
        assert FLAT.intensity(1e9) == 1.0

    def test_flat_level_validated(self):
        with pytest.raises(ValueError):
            FlatShape(level=0.0)

    def test_diurnal_tracks_profile(self):
        profile = get_profile("phone").diurnal
        shape = DiurnalShape(profile=profile)
        for hour in (0, 8, 20):
            assert shape.intensity(hour * 3600.0) == pytest.approx(
                profile.activity(hour)
            )

    def test_diurnal_exponent_softens_swing(self):
        profile = get_profile("phone").diurnal
        full = DiurnalShape(profile=profile)
        soft = DiurnalShape(profile=profile, exponent=0.5)
        peak = 20 * 3600.0
        assert 1.0 < soft.intensity(peak) < full.intensity(peak)

    def test_flash_crowd_trapezoid(self):
        shape = FlashCrowdShape(
            start=1000.0, ramp_seconds=100.0, hold_seconds=200.0, peak=5.0
        )
        assert shape.intensity(999.0) == 1.0  # before
        assert shape.intensity(1050.0) == pytest.approx(3.0)  # mid-ingress
        assert shape.intensity(1150.0) == 5.0  # hold
        assert shape.intensity(1350.0) == pytest.approx(3.0)  # mid-egress
        assert shape.intensity(1401.0) == 1.0  # after

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdShape(start=0.0, peak=0.0)
        with pytest.raises(ValueError):
            FlashCrowdShape(start=0.0, ramp_seconds=-1.0)

    def test_recovery_storm_profile(self):
        shape = RecoveryStormShape(
            recovery=500.0, peak=20.0, decay_seconds=100.0, quiet=0.05
        )
        assert shape.intensity(100.0) == 0.05  # outage
        assert shape.intensity(500.0) == pytest.approx(20.0)  # spike
        relaxed = shape.intensity(500.0 + 500.0)  # five time constants later
        assert 1.0 < relaxed < 1.2

    def test_ramp_and_step(self):
        ramp = RampShape(t0=0.0, t1=100.0, start_level=1.0, end_level=3.0)
        assert ramp.intensity(-5.0) == 1.0
        assert ramp.intensity(50.0) == pytest.approx(2.0)
        assert ramp.intensity(200.0) == 3.0
        step = StepShape(at=10.0, before=1.0, after=4.0)
        assert step.intensity(9.9) == 1.0
        assert step.intensity(10.0) == 4.0
        with pytest.raises(ValueError):
            RampShape(t0=5.0, t1=5.0)
        with pytest.raises(ValueError):
            StepShape(at=0.0, before=0.0)

    def test_multiplicative_composition(self):
        shape = StepShape(at=50.0, before=1.0, after=2.0) * FlatShape(level=3.0)
        assert isinstance(shape, ComposedShape)
        assert shape.intensity(0.0) == pytest.approx(3.0)
        assert shape.intensity(100.0) == pytest.approx(6.0)

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            ComposedShape(shapes=())


class TestWarp:
    def test_flat_warp_is_identity(self):
        times = np.array([0.0, 10.0, 33.5, 100.0])
        np.testing.assert_allclose(FLAT.warp(times, origin=0.0), times, atol=1e-9)

    def test_warp_preserves_order_and_origin(self):
        shape = FlashCrowdShape(start=100.0, ramp_seconds=50.0, hold_seconds=100.0,
                                peak=6.0)
        times = np.linspace(0.0, 1000.0, 200)
        warped = shape.warp(times, origin=0.0)
        assert np.all(np.diff(warped) >= 0)
        assert warped[0] == pytest.approx(0.0, abs=1.0)

    def test_warp_compresses_where_intensity_high(self):
        # Constant doubling halves every interarrival exactly.
        shape = FlatShape(level=2.0)
        times = np.array([0.0, 100.0, 200.0, 300.0])
        warped = shape.warp(times, origin=0.0)
        np.testing.assert_allclose(np.diff(warped), 50.0, rtol=1e-6)

    def test_warp_stretches_where_intensity_low(self):
        shape = FlatShape(level=0.25)
        times = np.array([0.0, 100.0])
        warped = shape.warp(times, origin=0.0)
        assert warped[-1] == pytest.approx(400.0, rel=1e-6)

    def test_warp_rejects_times_before_origin(self):
        with pytest.raises(ValueError):
            FLAT.warp(np.array([-5.0, 1.0]), origin=0.0)

    def test_warp_empty(self):
        assert FLAT.warp(np.empty(0), origin=0.0).size == 0


class TestThin:
    def test_flat_thinning_keeps_everything(self):
        rng = np.random.default_rng(0)
        keep = FLAT.thin(np.linspace(0, 100, 500), rng)
        assert keep.all()

    def test_thinning_tracks_intensity_ratio(self):
        shape = StepShape(at=500.0, before=1.0, after=4.0)
        times = np.concatenate(
            [np.linspace(0, 499, 4000), np.linspace(500, 999, 4000)]
        )
        keep = shape.thin(times, np.random.default_rng(7))
        low = keep[:4000].mean()
        high = keep[4000:].mean()
        assert high == pytest.approx(1.0, abs=0.01)
        assert low == pytest.approx(0.25, abs=0.05)

    def test_thinning_deterministic_given_rng(self):
        shape = StepShape(at=50.0, before=1.0, after=3.0)
        times = np.linspace(0, 100, 200)
        a = shape.thin(times, np.random.default_rng(3))
        b = shape.thin(times, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_thinning_empty(self):
        assert FLAT.thin(np.empty(0), np.random.default_rng(0)).size == 0
