"""Cohort / UEPopulation value objects and the built-in composite workloads."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import WORKLOADS, available_workloads
from repro.api.scenario import ScenarioSpec
from repro.mcn import LTE_COSTS, NR_COSTS
from repro.workload import (
    CITY_DAY,
    Cohort,
    FlatShape,
    UEPopulation,
    get_workload,
)
from repro.workload.population import _apportion


def _spec(name: str, technology: str = "4G", num_ues: int = 50) -> ScenarioSpec:
    return ScenarioSpec(name=name, technology=technology, num_ues=num_ues, seed=1)


class TestCohort:
    def test_scenario_resolved_by_name(self):
        cohort = Cohort(name="phones", scenario="phone-evening", num_ues=10)
        assert cohort.scenario.device_type == "phone"
        assert cohort.technology == "4G"

    def test_num_ues_defaults_to_scenario(self):
        cohort = Cohort(name="c", scenario=_spec("s", num_ues=77))
        assert cohort.num_ues == 77

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            Cohort(name="bad name", scenario=_spec("s"))
        with pytest.raises(ValueError):
            Cohort(name="c", scenario=_spec("s"), num_ues=-1)
        with pytest.raises(ValueError):
            Cohort(name="c", scenario=_spec("s"), shape_mode="stretch")
        with pytest.raises(ValueError):
            Cohort(name="c", scenario=_spec("s"), weight=0.0)
        with pytest.raises(TypeError):
            Cohort(name="c", scenario=_spec("s"), shape="diurnal")

    def test_scaled_rounds_count(self):
        cohort = Cohort(name="c", scenario=_spec("s"), num_ues=10)
        assert cohort.scaled(0.25).num_ues == 2
        assert cohort.scaled(3.0).num_ues == 30
        with pytest.raises(ValueError):
            cohort.scaled(-1.0)


class TestUEPopulation:
    def test_requires_cohorts(self):
        with pytest.raises(ValueError):
            UEPopulation(name="empty", cohorts=())

    def test_unique_names_required(self):
        cohort = Cohort(name="same", scenario=_spec("s"), num_ues=1)
        with pytest.raises(ValueError):
            UEPopulation(name="dup", cohorts=(cohort, cohort))

    def test_prefix_free_names_required(self):
        with pytest.raises(ValueError) as excinfo:
            UEPopulation(
                name="p",
                cohorts=(
                    Cohort(name="city", scenario=_spec("a"), num_ues=1),
                    Cohort(name="city2", scenario=_spec("b"), num_ues=1),
                ),
            )
        assert "prefix" in str(excinfo.value)

    def test_single_technology_required(self):
        with pytest.raises(ValueError):
            UEPopulation(
                name="mixed",
                cohorts=(
                    Cohort(name="lte", scenario=_spec("a", "4G"), num_ues=1),
                    Cohort(name="nr", scenario=_spec("b", "5G"), num_ues=1),
                ),
            )

    def test_totals_and_cost_model(self):
        population = UEPopulation(
            name="p",
            cohorts=(
                Cohort(name="a", scenario=_spec("a"), num_ues=30),
                Cohort(name="b", scenario=_spec("b"), num_ues=12),
            ),
        )
        assert population.total_ues == 42
        assert population.technology == "4G"
        assert population.cost_model is LTE_COSTS
        nr = UEPopulation(
            name="nr",
            cohorts=(Cohort(name="a", scenario=_spec("a", "5G"), num_ues=1),),
        )
        assert nr.cost_model is NR_COSTS

    def test_scaled_scales_every_cohort(self):
        scaled = CITY_DAY.scaled(0.5)
        assert scaled.total_ues == sum(
            round(c.num_ues * 0.5) for c in CITY_DAY.cohorts
        )
        # The original registered population is untouched (frozen).
        assert CITY_DAY.total_ues == 2000

    def test_with_total_ues_respects_weights_exactly(self):
        population = UEPopulation(
            name="p",
            cohorts=(
                Cohort(name="heavy", scenario=_spec("a"), num_ues=1, weight=3.0),
                Cohort(name="light", scenario=_spec("b"), num_ues=1, weight=1.0),
            ),
        )
        resized = population.with_total_ues(101)
        counts = {c.name: c.num_ues for c in resized.cohorts}
        assert sum(counts.values()) == 101
        assert counts["heavy"] > counts["light"] * 2

    def test_cohort_lookup(self):
        assert CITY_DAY.cohort("phones").scenario.device_type == "phone"
        with pytest.raises(KeyError):
            CITY_DAY.cohort("nope")

    def test_summary_mentions_every_cohort(self):
        text = CITY_DAY.summary()
        for cohort in CITY_DAY.cohorts:
            assert cohort.name in text


class TestApportionment:
    """Largest-remainder apportionment behind scaled()/with_total_ues()."""

    @given(
        total=st.integers(min_value=0, max_value=100_000),
        shares=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_apportion_sums_exactly_and_respects_quota(self, total, shares):
        counts = _apportion(total, shares)
        assert sum(counts) == total
        assert all(c >= 0 for c in counts)
        scale = sum(shares)
        if scale > 0:
            for count, share in zip(counts, shares):
                exact = total * share / scale
                # Largest-remainder satisfies the quota rule: every
                # count is the floor or ceiling of its exact share
                # (tolerance absorbs float rounding of the shares).
                assert math.floor(exact - 1e-9) <= count
                assert count <= math.ceil(exact + 1e-9)

    @given(
        total=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_apportion_all_zero_shares_splits_evenly(self, total, n):
        counts = _apportion(total, [0.0] * n)
        assert sum(counts) == total
        assert max(counts) - min(counts) <= 1

    @given(
        counts=st.lists(
            st.integers(min_value=1, max_value=5000), min_size=1, max_size=6
        ),
        factor=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_scaled_total_is_exactly_the_rounded_product(self, counts, factor):
        population = UEPopulation(
            name="p",
            cohorts=tuple(
                Cohort(name=f"c{i}", scenario=_spec(f"s{i}"), num_ues=n)
                for i, n in enumerate(counts)
            ),
        )
        scaled = population.scaled(factor)
        assert scaled.total_ues == int(round(population.total_ues * factor))
        # No cohort drifts more than one UE from its exact share.
        for before, after in zip(population.cohorts, scaled.cohorts):
            exact = scaled.total_ues * before.num_ues / population.total_ues
            assert abs(after.num_ues - exact) < 1.0

    @given(
        total=st.integers(min_value=0, max_value=50_000),
        weights=st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_with_total_ues_sums_exactly(self, total, weights):
        population = UEPopulation(
            name="p",
            cohorts=tuple(
                Cohort(
                    name=f"c{i}", scenario=_spec(f"s{i}"), num_ues=1, weight=w
                )
                for i, w in enumerate(weights)
            ),
        )
        assert population.with_total_ues(total).total_ues == total


class TestPresets:
    def test_builtins_registered(self):
        for name in (
            "city-day",
            "stadium-flash-crowd",
            "iot-firmware-storm",
            "handover-storm",
        ):
            assert name in available_workloads()
            assert WORKLOADS.get(name).total_ues > 0

    def test_alias_lookup(self):
        assert get_workload("stadium") is get_workload("stadium-flash-crowd")
        assert get_workload("city").name == "city-day"
        assert get_workload("IoT-Storm").name == "iot-firmware-storm"

    def test_passthrough(self):
        assert get_workload(CITY_DAY) is CITY_DAY

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_workload("not-a-workload")
