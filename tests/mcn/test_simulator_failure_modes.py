"""Failure-injection and saturation behavior of the MCN simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mcn import MCNSimulator, ServiceCostModel
from repro.trace import Stream, TraceDataset


def _storm(num_ues: int, interval: float = 0.001) -> TraceDataset:
    """A signaling storm: all UEs fire service requests near-simultaneously."""
    streams = []
    for u in range(num_ues):
        t = u * interval
        streams.append(
            Stream.from_arrays(
                f"ue{u}", "phone", [t, t + 1.0], ["SRV_REQ", "S1_CONN_REL"]
            )
        )
    return TraceDataset(streams=streams)


class TestSaturation:
    def test_queue_limit_drops_under_storm(self):
        data = _storm(200)
        bounded = MCNSimulator(
            workers=1,
            cost_model=ServiceCostModel(costs_ms={"SRV_REQ": 50.0, "S1_CONN_REL": 50.0},
                                        stochastic=False),
            queue_limit=5,
        ).run(data)
        assert bounded.dropped_events > 0
        assert bounded.num_events + bounded.dropped_events == data.total_events

    def test_unbounded_queue_never_drops(self):
        data = _storm(200)
        report = MCNSimulator(workers=1).run(data)
        assert report.dropped_events == 0

    def test_latency_grows_under_overload(self):
        data = _storm(150)
        slow_cost = ServiceCostModel(
            costs_ms={"SRV_REQ": 20.0, "S1_CONN_REL": 20.0}, stochastic=False
        )
        light = MCNSimulator(workers=32, cost_model=slow_cost).run(_storm(10))
        heavy = MCNSimulator(workers=1, cost_model=slow_cost).run(data)
        assert heavy.latency_percentile(99) > light.latency_percentile(99) * 5

    def test_utilization_saturates_at_one(self):
        data = _storm(300)
        report = MCNSimulator(
            workers=1,
            cost_model=ServiceCostModel(costs_ms={"SRV_REQ": 100.0, "S1_CONN_REL": 100.0},
                                        stochastic=False),
        ).run(data)
        assert report.utilization == pytest.approx(1.0, abs=0.01)

    def test_contexts_released_after_storm(self):
        report = MCNSimulator(workers=8).run(_storm(50))
        # Every UE released its connection; peak reflects the overlap.
        assert report.peak_connected_contexts >= 40

    def test_deterministic_cost_model_reproducible(self):
        data = _storm(30)
        cost = ServiceCostModel(costs_ms={"SRV_REQ": 5.0, "S1_CONN_REL": 5.0},
                                stochastic=False)
        a = MCNSimulator(workers=2, cost_model=cost, seed=0).run(data)
        b = MCNSimulator(workers=2, cost_model=cost, seed=1).run(data)
        np.testing.assert_allclose(
            sorted(np.concatenate(list(a.latencies_ms.values()))),
            sorted(np.concatenate(list(b.latencies_ms.values()))),
        )
