"""MCN simulator, autoscaler and telemetry tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mcn import (
    AutoscalePolicy,
    CountMinSketch,
    LTE_COSTS,
    MCNSimulator,
    SampledBreakdownMonitor,
    ServiceCostModel,
    calibrate_sampling_rate,
    simulate_autoscaling,
)
from repro.trace import Stream, TraceDataset


def _burst_dataset(n_ues=5, events_per_ue=10, spacing=0.5):
    streams = []
    for u in range(n_ues):
        times, events = [], []
        for k in range(events_per_ue):
            times.append(u * 0.01 + k * spacing)
            events.append("SRV_REQ" if k % 2 == 0 else "S1_CONN_REL")
        streams.append(Stream.from_arrays(f"ue{u}", "phone", times, events))
    return TraceDataset(streams=streams)


class TestCostModel:
    def test_known_costs(self):
        assert LTE_COSTS.mean_cost("ATCH") > LTE_COSTS.mean_cost("TAU")

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            LTE_COSTS.mean_cost("NOPE")

    def test_deterministic_mode(self, rng):
        model = ServiceCostModel(costs_ms={"SRV_REQ": 3.0}, stochastic=False)
        assert model.sample_cost("SRV_REQ", rng) == 3.0

    def test_stochastic_mean(self, rng):
        samples = [LTE_COSTS.sample_cost("SRV_REQ", rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(3.0, rel=0.1)


class TestSimulator:
    def test_latency_at_least_service_time(self):
        sim = MCNSimulator(workers=4, cost_model=ServiceCostModel(
            costs_ms={"SRV_REQ": 3.0, "S1_CONN_REL": 2.0}, stochastic=False))
        report = sim.run(_burst_dataset())
        assert report.latency_percentile(0) >= 2.0 - 1e-9

    def test_utilization_bounded(self):
        report = MCNSimulator(workers=2).run(_burst_dataset())
        assert 0.0 <= report.utilization <= 1.0

    def test_all_events_processed_unbounded_queue(self):
        data = _burst_dataset()
        report = MCNSimulator(workers=1).run(data)
        assert report.num_events == data.total_events
        assert report.dropped_events == 0

    def test_fewer_workers_higher_latency(self):
        data = _burst_dataset(n_ues=20, spacing=0.005)
        fast = MCNSimulator(workers=16, seed=1).run(data)
        slow = MCNSimulator(workers=1, seed=1).run(data)
        assert slow.latency_percentile(95) >= fast.latency_percentile(95)

    def test_peak_connected_contexts(self):
        # Two UEs connect (SRV_REQ) before either releases.
        streams = [
            Stream.from_arrays("a", "phone", [0.0, 10.0], ["SRV_REQ", "S1_CONN_REL"]),
            Stream.from_arrays("b", "phone", [1.0, 11.0], ["SRV_REQ", "S1_CONN_REL"]),
        ]
        report = MCNSimulator(workers=4).run(TraceDataset(streams=streams))
        assert report.peak_connected_contexts == 2

    def test_empty_dataset(self):
        report = MCNSimulator(workers=2).run(TraceDataset())
        assert report.num_events == 0
        assert report.throughput_eps == 0.0
        with pytest.raises(ValueError):
            report.latency_percentile(50)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            MCNSimulator(workers=0).run(_burst_dataset())

    def test_per_event_latency_query(self):
        report = MCNSimulator(workers=4).run(_burst_dataset())
        assert report.latency_percentile(50, "SRV_REQ") > 0
        with pytest.raises(ValueError):
            report.latency_percentile(50, "HO")

    def test_throughput_positive(self):
        report = MCNSimulator(workers=4).run(_burst_dataset())
        assert report.throughput_eps > 0
        assert report.mean_latency() > 0


class TestAutoscaler:
    def test_policy_scales_up_toward_demand(self):
        policy = AutoscalePolicy(target_utilization=0.5, max_step=2)
        assert policy.next_workers(2, offered_load=4.0) == 4  # step-limited
        assert policy.next_workers(6, offered_load=4.0) == 8

    def test_policy_scales_down(self):
        policy = AutoscalePolicy(target_utilization=0.5, max_step=3, min_workers=1)
        assert policy.next_workers(10, offered_load=0.5) == 7

    def test_policy_clamps_to_bounds(self):
        policy = AutoscalePolicy(max_workers=4, max_step=100)
        assert policy.next_workers(1, offered_load=1000.0) == 4

    def test_invalid_target_rejected_at_construction(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(target_utilization=0.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(target_utilization=1.5)

    def test_invalid_bounds_rejected_at_construction(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=8, max_workers=4)
        with pytest.raises(ValueError):
            AutoscalePolicy(max_step=0)

    def test_simulation_tracks_windows(self):
        data = _burst_dataset(n_ues=10, events_per_ue=40, spacing=30.0)
        trace = simulate_autoscaling(data, AutoscalePolicy(), window_seconds=120.0)
        assert len(trace.workers) == len(trace.offered_load)
        assert trace.peak_workers >= 1
        assert 0.0 <= trace.mean_utilization <= 1.0

    def test_empty_dataset_empty_trace(self):
        trace = simulate_autoscaling(TraceDataset(), AutoscalePolicy())
        assert trace.workers == []
        assert trace.scaling_actions == 0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            simulate_autoscaling(TraceDataset(), AutoscalePolicy(), window_seconds=0)

    def test_out_of_order_stream_rejected(self):
        events = [(1000.0, "u1", "SRV_REQ"), (500.0, "u2", "SRV_REQ")]
        with pytest.raises(ValueError, match="time-ordered"):
            simulate_autoscaling(iter(events), AutoscalePolicy())

    def test_streaming_matches_dataset_path(self):
        data = _burst_dataset(n_ues=8, events_per_ue=30, spacing=20.0)
        events = sorted(
            (event.timestamp, stream.ue_id, event.event)
            for stream in data
            for event in stream
        )
        from_stream = simulate_autoscaling(
            iter(events), AutoscalePolicy(), window_seconds=120.0
        )
        from_dataset = simulate_autoscaling(
            data, AutoscalePolicy(), window_seconds=120.0
        )
        assert from_stream.offered_load == from_dataset.offered_load
        assert from_stream.workers == from_dataset.workers


class TestTelemetry:
    def test_cms_overestimates_never_under(self, rng):
        sketch = CountMinSketch(width=64, depth=4)
        truth: dict[str, int] = {}
        for _ in range(2000):
            key = f"ue{rng.integers(0, 300)}"
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.query(key) >= count

    def test_cms_exact_when_sparse(self):
        sketch = CountMinSketch(width=4096, depth=4)
        sketch.add("alice", 7)
        assert sketch.query("alice") == 7
        assert sketch.query("bob") == 0

    def test_cms_memory_accounting(self):
        sketch = CountMinSketch(width=128, depth=2)
        assert sketch.memory_bytes == 128 * 2 * 8

    def test_cms_heavy_hitters(self):
        sketch = CountMinSketch(width=1024, depth=4)
        sketch.add("big", 100)
        sketch.add("small", 1)
        hits = sketch.heavy_hitters(["big", "small"], threshold=50)
        assert hits == [("big", 100)]

    def test_cms_invalid_dims(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)

    def test_sampling_error_decreases_with_rate(self, phone_trace):
        low = SampledBreakdownMonitor(sampling_rate=0.01, seed=0).max_error(phone_trace)
        high = SampledBreakdownMonitor(sampling_rate=0.5, seed=0).max_error(phone_trace)
        assert high <= low + 0.02

    def test_full_sampling_exact(self, phone_trace):
        monitor = SampledBreakdownMonitor(sampling_rate=1.0)
        assert monitor.max_error(phone_trace) == pytest.approx(0.0, abs=1e-12)

    def test_invalid_rate_rejected(self, phone_trace):
        with pytest.raises(ValueError):
            SampledBreakdownMonitor(sampling_rate=0.0).estimate(phone_trace)

    def test_calibrate_sampling_rate_monotone(self, phone_trace):
        loose = calibrate_sampling_rate(phone_trace, target_error=0.2)
        tight = calibrate_sampling_rate(phone_trace, target_error=0.005)
        assert loose <= tight

    def test_calibrate_invalid_target(self, phone_trace):
        with pytest.raises(ValueError):
            calibrate_sampling_rate(phone_trace, target_error=0.0)
