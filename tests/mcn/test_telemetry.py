"""Telemetry: count-min sketch, sampled breakdown, rate calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mcn.telemetry import (
    CountMinSketch,
    SampledBreakdownMonitor,
    calibrate_sampling_rate,
)
from repro.trace import SyntheticTraceConfig, generate_trace
from repro.trace.dataset import TraceDataset
from repro.trace.schema import Stream


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        SyntheticTraceConfig(num_ues=120, device_type="phone", hour=20, seed=21)
    )


class TestCountMinSketch:
    def test_query_never_underestimates(self):
        sketch = CountMinSketch(width=64, depth=4, seed=0)
        truth = {f"ue-{i}": (i % 7) + 1 for i in range(200)}
        for key, count in truth.items():
            sketch.add(key, count)
        for key, count in truth.items():
            assert sketch.query(key) >= count

    def test_error_bounded_by_width(self):
        sketch = CountMinSketch(width=2048, depth=4, seed=1)
        truth = {f"ue-{i}": 1 for i in range(500)}
        for key, count in truth.items():
            sketch.add(key, count)
        total = sum(truth.values())
        # Classic CM bound: overestimate <= 2 * total / width w.h.p. per
        # row; with 4 rows the min is far tighter in practice.
        slack = 2 * total / sketch.width
        overshoots = [sketch.query(k) - c for k, c in truth.items()]
        assert max(overshoots) <= max(1, int(np.ceil(slack)) * sketch.depth)

    def test_unseen_key_can_only_collide(self):
        sketch = CountMinSketch(width=4096, depth=5, seed=2)
        sketch.add("present", 10)
        assert sketch.query("absent-key") <= 10

    def test_memory_is_width_times_depth(self):
        sketch = CountMinSketch(width=128, depth=3)
        assert sketch.memory_bytes == 128 * 3 * 8

    def test_heavy_hitters(self):
        sketch = CountMinSketch(width=1024, depth=4, seed=3)
        sketch.add("elephant", 100)
        sketch.add("mouse", 1)
        hits = dict(sketch.heavy_hitters(["elephant", "mouse"], threshold=50))
        assert "elephant" in hits and "mouse" not in hits

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(depth=0)


class TestSampledBreakdownMonitor:
    def test_full_sampling_is_exact(self, trace):
        monitor = SampledBreakdownMonitor(sampling_rate=1.0, seed=0)
        estimate = monitor.estimate(trace)
        truth = trace.event_breakdown()
        for name, share in estimate.items():
            assert share == pytest.approx(truth[name])
        assert monitor.max_error(trace) == pytest.approx(0.0, abs=1e-12)

    def test_shares_sum_to_one(self, trace):
        monitor = SampledBreakdownMonitor(sampling_rate=0.2, seed=1)
        estimate = monitor.estimate(trace)
        assert sum(estimate.values()) == pytest.approx(1.0)

    def test_rate_out_of_range_rejected(self, trace):
        for rate in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="sampling_rate"):
                SampledBreakdownMonitor(sampling_rate=rate).estimate(trace)

    def test_empty_dataset_estimate_is_empty(self):
        empty = TraceDataset(
            streams=[Stream(ue_id="u0", device_type="phone")]
        )
        monitor = SampledBreakdownMonitor(sampling_rate=0.5)
        assert monitor.estimate(empty) == {}

    def test_coarser_sampling_grows_error(self, trace):
        fine = SampledBreakdownMonitor(sampling_rate=0.5, seed=7).max_error(trace)
        coarse = SampledBreakdownMonitor(sampling_rate=0.002, seed=7).max_error(trace)
        assert coarse >= fine


class TestCalibrateSamplingRate:
    def test_loose_target_picks_smallest_rate(self, trace):
        rate = calibrate_sampling_rate(trace, target_error=1.0, seed=0)
        assert rate == 0.001

    def test_impossible_target_returns_full_rate(self, trace):
        rate = calibrate_sampling_rate(
            trace, target_error=1e-12, rates=(0.001, 0.01), seed=0
        )
        assert rate == 1.0

    def test_returned_rate_meets_target(self, trace):
        target = 0.02
        rate = calibrate_sampling_rate(trace, target_error=target, seed=3)
        if rate < 1.0:
            monitor = SampledBreakdownMonitor(sampling_rate=rate, seed=3)
            assert monitor.max_error(trace) <= target

    def test_nonpositive_target_rejected(self, trace):
        with pytest.raises(ValueError, match="target_error"):
            calibrate_sampling_rate(trace, target_error=0.0)
