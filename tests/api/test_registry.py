"""Registry semantics: aliases, case-insensitivity, plugin registration."""

from __future__ import annotations

import pytest

from repro.api import (
    GENERATORS,
    SCENARIOS,
    Registry,
    ScenarioSpec,
    available_generators,
    available_scenarios,
    register_generator,
    register_scenario,
)


class TestBuiltins:
    def test_four_backends_registered(self):
        assert set(available_generators()) >= {"cpt-gpt", "smm-1", "smm-k", "netshare"}

    def test_paper_display_names_are_aliases(self):
        assert GENERATORS.canonical("CPT-GPT") == "cpt-gpt"
        assert GENERATORS.canonical("SMM-1") == "smm-1"
        assert GENERATORS.canonical("SMM-20k") == "smm-k"
        assert GENERATORS.canonical("NetShare") == "netshare"

    def test_lookup_is_case_insensitive(self):
        assert GENERATORS.canonical("Cpt-Gpt") == "cpt-gpt"
        assert "NETSHARE" in GENERATORS

    def test_builtin_scenarios(self):
        assert set(available_scenarios()) >= {
            "phone-evening",
            "phone-morning",
            "connected-car-evening",
            "tablet-evening",
            "phone-5g",
        }


class TestErrors:
    def test_unknown_generator_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown generator"):
            GENERATORS.canonical("GPT-5")

    def test_unknown_scenario_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            SCENARIOS.get("mars-rover")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", object())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("A", object())

    def test_alias_collision_rejected(self):
        registry = Registry("thing")
        registry.register("a", object(), aliases=("x",))
        with pytest.raises(ValueError, match="already taken"):
            registry.register("b", object(), aliases=("X",))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Registry("thing").register("  ", object())


class TestPlugins:
    def test_register_and_unregister_generator(self):
        from repro.api import GeneratorBase

        @register_generator("test-dummy", aliases=("TestDummy",))
        class Dummy(GeneratorBase):
            def _fit(self, dataset, scenario):
                pass

            def _generate_batch(self, count, rng, start_time):
                return []

            def save(self, path):
                pass

            @classmethod
            def load(cls, path):
                return cls()

        try:
            assert "test-dummy" in GENERATORS
            assert GENERATORS.canonical("TestDummy") == "test-dummy"
            assert Dummy.name == "test-dummy"
        finally:
            GENERATORS.unregister("test-dummy")
        assert "test-dummy" not in GENERATORS
        assert "testdummy" not in GENERATORS

    def test_register_scenario_factory_and_instance(self):
        @register_scenario("test-factory-scenario")
        def _factory():
            return ScenarioSpec(name="test-factory-scenario", hour=3)

        register_scenario("test-instance-scenario")(
            ScenarioSpec(name="test-instance-scenario", hour=4)
        )
        try:
            assert SCENARIOS.get("test-factory-scenario").hour == 3
            assert SCENARIOS.get("test-instance-scenario").hour == 4
        finally:
            SCENARIOS.unregister("test-factory-scenario")
            SCENARIOS.unregister("test-instance-scenario")
