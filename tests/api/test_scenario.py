"""ScenarioSpec: validation, technology-derived artifacts, derivation."""

from __future__ import annotations

import pytest

from repro.api import ScenarioSpec, get_scenario
from repro.statemachine import LTE_EVENTS, LTE_SPEC, NR_EVENTS, NR_SPEC


class TestValidation:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.device_type == "phone"
        assert spec.technology == "4G"

    def test_bad_technology_rejected(self):
        with pytest.raises(ValueError, match="technology"):
            ScenarioSpec(technology="6G")

    def test_bad_device_rejected(self):
        with pytest.raises(ValueError, match="device type"):
            ScenarioSpec(device_type="toaster")

    def test_bad_hour_rejected(self):
        with pytest.raises(ValueError, match="hour"):
            ScenarioSpec(hour=24)

    def test_negative_ues_rejected(self):
        with pytest.raises(ValueError, match="num_ues"):
            ScenarioSpec(num_ues=-1)


class TestTechnologyArtifacts:
    def test_4g_artifacts(self):
        spec = ScenarioSpec(technology="4G")
        assert spec.vocabulary is LTE_EVENTS
        assert spec.machine_spec is LTE_SPEC
        assert spec.dominant_events == ("SRV_REQ", "S1_CONN_REL")

    def test_5g_artifacts(self):
        spec = ScenarioSpec(technology="5G")
        assert spec.vocabulary is NR_EVENTS
        assert spec.machine_spec is NR_SPEC
        assert spec.dominant_events == ("SRV_REQ", "AN_REL")

    def test_start_time_from_hour(self):
        assert ScenarioSpec(hour=20).start_time == 20 * 3600.0


class TestDerivation:
    def test_trace_config_round_trip(self):
        spec = ScenarioSpec(
            name="t", device_type="tablet", technology="5G", hour=6,
            num_ues=42, seed=9,
        )
        config = spec.trace_config()
        assert config.num_ues == 42
        assert config.device_type == "tablet"
        assert config.technology == "5G"
        assert config.hour == 6
        assert config.seed == 9

    def test_trace_config_overrides(self):
        config = ScenarioSpec(num_ues=10, seed=1).trace_config(
            num_ues=99, seed_offset=1000
        )
        assert config.num_ues == 99
        assert config.seed == 1001

    def test_with_overrides_and_dict_round_trip(self):
        spec = ScenarioSpec(name="a", hour=5)
        other = spec.with_overrides(hour=6)
        assert other.hour == 6 and spec.hour == 5
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_get_scenario_passthrough_and_lookup(self):
        spec = ScenarioSpec(name="inline")
        assert get_scenario(spec) is spec
        looked_up = get_scenario("phone-5g")
        assert looked_up.technology == "5G"
