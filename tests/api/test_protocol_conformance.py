"""Protocol conformance, parametrized over every registered backend.

Each registered generator must satisfy the same contract: fit →
generate (right count, deterministic under a fixed seed) → save → load
round-trip reproducing generation exactly, plus lazy streaming that
never materializes the population.  A backend registered by a plugin is
automatically picked up (with default constructor options).
"""

from __future__ import annotations

import itertools
import types

import numpy as np
import pytest

from repro.api import GENERATORS, ScenarioSpec, TrafficGenerator, load_generator
from repro.api import available_generators
from repro.baselines import NetShareConfig
from repro.core import CPTGPTConfig, TrainingConfig
from repro.trace import SyntheticTraceConfig, TraceDataset, generate_trace

#: Tiny constructor options per backend; unknown backends run defaults.
TINY_OPTIONS = {
    "cpt-gpt": dict(
        config=CPTGPTConfig(
            d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
        ),
        training=TrainingConfig(epochs=2, batch_size=32, seed=0),
    ),
    "netshare": dict(
        config=NetShareConfig(
            max_len=100, batch_generation=5, latent_dim=8, hidden_size=16,
            disc_hidden=32,
        ),
        epochs=2,
    ),
    "smm-k": dict(num_clusters=3, seed=0),
}

#: Artifact suffix per backend (npz-based backends need .npz so numpy
#: does not append one behind our back).
SUFFIX = {"smm-1": ".json", "smm-k": ".json"}


@pytest.fixture(scope="module")
def scenario() -> ScenarioSpec:
    return ScenarioSpec(name="conformance", num_ues=60, hour=20, seed=5)


@pytest.fixture(scope="module")
def capture(scenario) -> TraceDataset:
    return generate_trace(scenario.trace_config())


@pytest.fixture(scope="module", params=available_generators())
def fitted(request, capture, scenario):
    cls = GENERATORS.get(request.param)
    return cls(**TINY_OPTIONS.get(request.param, {})).fit(capture, scenario)


def _signature(dataset_or_streams):
    streams = getattr(dataset_or_streams, "streams", dataset_or_streams)
    return [
        (s.ue_id, s.device_type, [(e.timestamp, e.event) for e in s.events])
        for s in streams
    ]


class TestProtocol:
    def test_satisfies_runtime_protocol(self, fitted):
        assert isinstance(fitted, TrafficGenerator)

    def test_fit_returns_self_and_marks_fitted(self, fitted):
        assert fitted.fitted
        assert fitted.scenario is not None

    def test_generate_count_and_type(self, fitted):
        trace = fitted.generate(12, np.random.default_rng(3))
        assert isinstance(trace, TraceDataset)
        assert len(trace) == 12

    def test_generate_zero(self, fitted):
        assert len(fitted.generate(0, np.random.default_rng(0))) == 0

    def test_generate_negative_rejected(self, fitted):
        with pytest.raises(ValueError, match="non-negative"):
            fitted.generate(-1, np.random.default_rng(0))

    def test_deterministic_under_fixed_seed(self, fitted):
        a = fitted.generate(10, np.random.default_rng(42))
        b = fitted.generate(10, np.random.default_rng(42))
        assert _signature(a) == _signature(b)

    def test_unfitted_generate_rejected(self, fitted):
        fresh = type(fitted)()
        with pytest.raises(RuntimeError, match="fit"):
            fresh.generate(1, np.random.default_rng(0))


class TestStreaming:
    def test_stream_returns_lazy_iterator(self, fitted):
        iterator = fitted.generate(10, np.random.default_rng(1), stream=True)
        assert isinstance(iterator, types.GeneratorType)
        assert not isinstance(iterator, list)

    def test_stream_is_constant_memory(self, fitted):
        """Pulling a few streams from an astronomically large request
        must return immediately — nothing is materialized up front."""
        iterator = fitted.generate(10**9, np.random.default_rng(1), stream=True)
        first = list(itertools.islice(iterator, 3))
        assert len(first) == 3
        iterator.close()

    def test_stream_matches_materialized(self, fitted):
        lazy = list(fitted.generate(8, np.random.default_rng(6), stream=True))
        eager = fitted.generate(8, np.random.default_rng(6))
        assert _signature(lazy) == _signature(eager)


class TestPersistence:
    def test_save_load_round_trip(self, fitted, tmp_path):
        path = tmp_path / f"artifact{SUFFIX.get(fitted.name, '.npz')}"
        fitted.save(path)
        restored = load_generator(path)
        assert restored.name == fitted.name
        a = fitted.generate(10, np.random.default_rng(7))
        b = restored.generate(10, np.random.default_rng(7))
        assert _signature(a) == _signature(b)

    def test_save_honors_exact_path_without_suffix(self, fitted, tmp_path):
        """numpy must not append .npz behind the caller's back."""
        path = tmp_path / "artifact.generator"
        fitted.save(path)
        assert path.exists()
        assert not path.with_name("artifact.generator.npz").exists()
        restored = load_generator(path)
        assert restored.name == fitted.name

    def test_loaded_generator_keeps_scenario(self, fitted, tmp_path, scenario):
        path = tmp_path / f"artifact{SUFFIX.get(fitted.name, '.npz')}"
        fitted.save(path)
        restored = load_generator(path)
        assert restored.scenario.device_type == scenario.device_type
        assert restored.scenario.technology == scenario.technology


class TestAdapterSpecifics:
    """Behaviors pinned for individual adapters (not protocol-wide)."""

    def test_cptgpt_training_schedule_survives_round_trip(self, tmp_path, capture, scenario):
        from repro.api import CPTGPTGenerator

        training = TrainingConfig(epochs=2, batch_size=16, learning_rate=1e-3, seed=4)
        generator = CPTGPTGenerator(
            config=TINY_OPTIONS["cpt-gpt"]["config"], training=training
        ).fit(capture, scenario)
        path = tmp_path / "cpt.npz"
        generator.save(path)
        restored = load_generator(path)
        assert restored.training == training
        assert restored.transfer_training == generator.transfer_training

    def test_smm_generation_window_follows_scenario_duration(self, capture):
        from repro.api import SMMOneGenerator

        half_hour = ScenarioSpec(name="half", num_ues=60, hour=20, seed=5,
                                 duration=1800.0)
        generator = SMMOneGenerator().fit(capture, half_hour)
        assert generator.unwrap().duration == 1800.0
        trace = generator.generate(
            40, np.random.default_rng(1), start_time=half_hour.start_time
        )
        end = half_hour.start_time + 1800.0
        for stream in trace:
            for event in stream.events:
                assert event.timestamp < end
