"""Session facade: chaining, caching, streaming, evaluation."""

from __future__ import annotations

import itertools
import types

import numpy as np
import pytest

from repro.api import (
    GENERATORS,
    GeneratorBase,
    ScenarioSpec,
    Session,
    register_generator,
)
from repro.metrics import FidelityReport
from repro.trace import Stream, SyntheticTraceConfig, generate_trace

TINY = ScenarioSpec(name="session-test", num_ues=50, hour=20, seed=3)


@pytest.fixture(scope="module")
def session() -> Session:
    """One SMM-1-fitted session shared by the read-only tests."""
    return Session(TINY).synthesize().fit("smm-1")


class TestChaining:
    def test_steps_return_the_session(self, session):
        assert session.synthesize() is session
        assert session.fit("smm-1") is session
        assert session.generate(10, seed=1) is session

    def test_named_scenario_lookup(self):
        assert Session("phone-5g").scenario.technology == "5G"

    def test_full_chain_yields_report(self):
        report = (
            Session(TINY)
            .synthesize()
            .fit("SMM-1")  # paper display alias resolves via the registry
            .generate(20, seed=2)
            .evaluate()
        )
        assert isinstance(report, FidelityReport)


class TestCaching:
    def test_datasets_cached(self, session):
        assert session.dataset is session.dataset
        assert session.test_dataset is session.test_dataset

    def test_train_and_test_captures_differ(self, session):
        train_ids = {s.ue_id for s in session.dataset}
        test_ids = {s.ue_id for s in session.test_dataset}
        assert train_ids.isdisjoint(test_ids)

    def test_fit_is_idempotent_per_backend(self, session):
        before = session.generator("smm-1")
        session.fit("smm-1")
        assert session.generator("smm-1") is before

    def test_fit_with_options_refits_and_drops_stale_populations(self):
        """Explicit options must never be silently ignored by the cache."""
        fresh = Session(TINY).synthesize().fit("smm-k", num_clusters=2, seed=0)
        first = fresh.generator("smm-k")
        stale = fresh.generated(6, seed=1)
        fresh.fit("smm-k", num_clusters=4, seed=0)
        assert fresh.generator("smm-k") is not first
        assert fresh.generator("smm-k").num_clusters == 4
        assert fresh.generated(6, seed=1) is not stale

    def test_generated_cached_by_count_and_seed(self, session):
        a = session.generated(15, seed=4)
        b = session.generated(15, seed=4)
        c = session.generated(15, seed=5)
        assert a is b
        assert a is not c
        assert len(a) == 15

    def test_unfitted_generator_lookup_rejected(self, session):
        with pytest.raises(RuntimeError, match="not fitted"):
            session.generator("cpt-gpt")

    def test_no_active_generator_rejected(self):
        with pytest.raises(RuntimeError, match="fit"):
            Session(TINY).generate(5)


class TestStreaming:
    def test_iter_streams_is_lazy(self, session):
        iterator = session.iter_streams(10**9, seed=11)
        assert isinstance(iterator, types.GeneratorType)
        first = list(itertools.islice(iterator, 4))
        iterator.close()
        assert len(first) == 4
        assert all(isinstance(s, Stream) for s in first)

    def test_iter_streams_matches_generate(self, session):
        lazy = [s.ue_id for s in session.iter_streams(12, seed=13)]
        eager = [s.ue_id for s in session.generated(12, seed=13)]
        assert lazy == eager

    def test_streams_start_at_scenario_hour(self, session):
        for stream in itertools.islice(session.iter_streams(30, seed=1), 30):
            if stream.events:
                assert stream.events[0].timestamp >= TINY.start_time


class TestEvaluation:
    def test_evaluate_targets_last_generated_of_backend(self, session):
        session.generate(10, seed=21)
        report = session.evaluate(generator="smm-1")
        explicit = session.evaluate(session.generated(10, seed=21))
        assert report.as_flat_dict() == explicit.as_flat_dict()

    def test_evaluate_without_test_capture_rejected(self):
        trace = generate_trace(SyntheticTraceConfig(num_ues=20, seed=1))
        bare = Session(TINY.with_overrides(name="no-test")).use_dataset(trace)
        bare.fit("smm-1").generate(5, seed=1)
        with pytest.raises(RuntimeError, match="held-out"):
            bare.evaluate()


class TestPersistenceAndPlugins:
    def test_save_and_load_through_session(self, session, tmp_path):
        path = tmp_path / "smm1.json"
        session.save(path, generator="smm-1")
        other = Session(TINY).load(path)
        a = [s.ue_id for s in other.generated(8, seed=6)]
        b = [s.ue_id for s in session.generated(8, seed=6)]
        assert a == b

    def test_custom_backend_through_session(self):
        @register_generator("session-test-constant")
        class ConstantGenerator(GeneratorBase):
            """Yields empty streams — just enough to exercise the plumbing."""

            def _fit(self, dataset, scenario):
                self._device = scenario.device_type

            def _generate_batch(self, count, rng, start_time):
                return [
                    Stream(ue_id=f"ue{rng.integers(1 << 30):08x}",
                           device_type=self._device, events=[])
                    for _ in range(count)
                ]

            def save(self, path):  # pragma: no cover - not exercised
                raise NotImplementedError

            @classmethod
            def load(cls, path):  # pragma: no cover - not exercised
                raise NotImplementedError

        try:
            trace = Session(TINY).fit("session-test-constant").generated(7, seed=1)
            assert len(trace) == 7
            assert all(s.device_type == "phone" for s in trace)
        finally:
            GENERATORS.unregister("session-test-constant")

    def test_fit_accepts_prebuilt_instance(self, session):
        prebuilt = GENERATORS.get("smm-1")()
        fresh = Session(TINY).fit(prebuilt)
        assert fresh.generator() is prebuilt
        assert prebuilt.fitted

    def test_unregistered_plugin_instances_do_not_collide(self):
        """Two unregistered plugin classes must get distinct cache keys."""

        class _PluginBase(GeneratorBase):
            def _fit(self, dataset, scenario):
                pass

            def _generate_batch(self, count, rng, start_time):
                return []

            def save(self, path):  # pragma: no cover - not exercised
                raise NotImplementedError

            @classmethod
            def load(cls, path):  # pragma: no cover - not exercised
                raise NotImplementedError

        class PluginA(_PluginBase):
            pass

        class PluginB(_PluginBase):
            pass

        fresh = Session(TINY).fit(PluginA()).fit(PluginB())
        assert isinstance(fresh.generator("PluginA"), PluginA)
        assert isinstance(fresh.generator("PluginB"), PluginB)

    def test_fit_instance_drops_stale_populations_of_same_name(self):
        fresh = Session(TINY).synthesize().fit("smm-1")
        stale = fresh.generated(6, seed=1)
        fresh.fit(GENERATORS.get("smm-1")())  # a different backend object
        assert fresh.generated(6, seed=1) is not stale

    def test_use_dataset_drops_artifacts_of_previous_dataset(self):
        """Swapping captures must invalidate everything fitted on them."""
        fresh = Session(TINY).synthesize().fit("smm-1")
        old_generator = fresh.generator("smm-1")
        stale = fresh.generated(6, seed=1)
        other = generate_trace(SyntheticTraceConfig(num_ues=30, seed=4))
        fresh.use_dataset(other, other)
        fresh.fit("smm-1")
        assert fresh.generator("smm-1") is not old_generator
        # The semi-Markov model's weight records the UE count it was
        # fitted on — proof the refit used the new 30-UE capture.
        assert fresh.generator("smm-1").unwrap().model.weight == 30
        assert fresh.generated(6, seed=1) is not stale

    def test_load_drops_stale_populations_of_same_name(self, session, tmp_path):
        path = tmp_path / "reload.json"
        session.save(path, generator="smm-1")
        fresh = Session(TINY).synthesize().fit("smm-1")
        stale = fresh.generated(6, seed=2)
        fresh.load(path)
        assert fresh.generated(6, seed=2) is not stale


class TestStartTimeOverride:
    def test_generate_start_time_override_and_cache_key(self, session):
        default = session.generated(8, seed=30)
        shifted = session.generated(8, seed=30, start_time=3 * 3600.0)
        assert default is not shifted
        assert session.generated(8, seed=30) is default  # cache intact
        for stream in shifted:
            if stream.events:
                assert stream.events[0].timestamp >= 3 * 3600.0
                assert stream.events[0].timestamp < TINY.start_time

    def test_iter_streams_start_time_override(self, session):
        for stream in session.iter_streams(10, seed=2, start_time=0.0):
            if stream.events:
                assert stream.events[0].timestamp < TINY.start_time
