"""num_workers / float32 plumbing through the api surface and CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.api.adapters import CPTGPTGenerator, SMMOneGenerator
from repro.core import CPTGPTConfig, TrainingConfig
from repro.trace import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def small_session():
    session = Session("phone-evening")
    trace = generate_trace(
        SyntheticTraceConfig(num_ues=80, device_type="phone", hour=20, seed=4)
    )
    test_trace = generate_trace(
        SyntheticTraceConfig(num_ues=80, device_type="phone", hour=20, seed=5)
    )
    session.use_dataset(trace, test_trace)
    session.fit(
        "cpt-gpt",
        config=CPTGPTConfig(
            d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
        ),
        training=TrainingConfig(epochs=1, batch_size=32, seed=0),
    )
    return session


class TestSessionWorkers:
    def test_iter_streams_num_workers(self, small_session):
        streams = list(small_session.iter_streams(30, seed=2, num_workers=2))
        assert len(streams) == 30
        for stream in streams:
            stream.validate()

    def test_generated_num_workers_cached_separately(self, small_session):
        single = small_session.generated(20, seed=3)
        sharded = small_session.generated(20, seed=3, num_workers=2)
        again = small_session.generated(20, seed=3, num_workers=2)
        assert len(single) == len(sharded) == 20
        # Same key -> cache hit (identical object); different worker
        # splits are distinct cache entries.
        assert sharded is again
        assert single is not sharded

    def test_smm_backend_shards_too(self, small_session):
        """Sharding lives in GeneratorBase, so every backend gets it."""
        small_session.fit("smm-1")
        trace = small_session.generated(24, seed=1, generator="smm-1", num_workers=2)
        assert len(trace) == 24

    def test_sharded_deterministic_through_session(self, small_session):
        a = small_session.generator("cpt-gpt").generate(
            26, np.random.default_rng(8), num_workers=2
        )
        b = small_session.generator("cpt-gpt").generate(
            26, np.random.default_rng(8), num_workers=2
        )
        for s1, s2 in zip(a, b):
            assert s1.event_names() == s2.event_names()


class TestFloat32Adapter:
    def test_cpt_gpt_generator_float32_flag(self, small_session):
        generator = small_session.generator("cpt-gpt")
        assert generator.float32 is False
        generator.float32 = True
        try:
            trace = generator.generate(15, np.random.default_rng(0))
            assert len(trace) == 15
            for stream in trace:
                stream.validate()
        finally:
            generator.float32 = False

    def test_constructor_flag(self):
        generator = CPTGPTGenerator(float32=True)
        assert generator.float32 is True

    def test_smm_has_no_float32(self):
        assert not hasattr(SMMOneGenerator(), "float32")


class TestCLIFlags:
    def test_generate_with_workers_and_float32(self, small_session, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "package.npz"
        small_session.save(artifact, generator="cpt-gpt")
        output = tmp_path / "out.jsonl"
        code = main(
            [
                "generate", str(artifact), str(output),
                "--count", "12", "--seed", "3", "--workers", "2", "--float32",
            ]
        )
        assert code == 0
        assert "wrote 12 streams" in capsys.readouterr().out
        from repro.trace import load_jsonl

        assert len(load_jsonl(output)) == 12

    def test_generate_float32_warns_for_smm(self, tmp_path, capsys):
        from repro.cli import main

        trace = generate_trace(
            SyntheticTraceConfig(num_ues=40, device_type="phone", hour=20, seed=4)
        )
        session = Session("phone-evening").use_dataset(trace)
        session.fit("smm-1")
        artifact = tmp_path / "smm.json"
        session.save(artifact)
        output = tmp_path / "out.jsonl"
        code = main(
            ["generate", str(artifact), str(output), "--count", "5", "--float32"]
        )
        assert code == 0
        assert "no float32 fast path" in capsys.readouterr().err
