"""Examples stay importable/compilable.

Full example runs take minutes (they train models); these tests compile
each script and exercise its import-time dependencies, which catches the
most common rot (renamed APIs) without the training cost.  The examples
themselves are executed in the repo's verification runs.
"""

from __future__ import annotations

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every ``from repro...`` import in the example must resolve."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            module = __import__(node.module, fromlist=[alias.name for alias in node.names])
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} does not exist"
                )


def test_expected_example_set():
    names = {p.name for p in EXAMPLE_FILES}
    assert {
        "quickstart.py",
        "baseline_comparison.py",
        "mcn_load_evaluation.py",
        "hourly_drift_transfer.py",
        "telemetry_calibration.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_has_main_guard(path):
    source = path.read_text(encoding="utf-8")
    assert 'if __name__ == "__main__":' in source
    assert '"""' in source.split("\n\n")[0] or source.startswith('"""')
