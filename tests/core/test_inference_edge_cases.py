"""Additional generation-path edge cases and sampling statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generate import _sample_rows, _softmax, _softplus


class TestSampleRows:
    def test_respects_distribution(self, rng):
        probs = np.tile(np.array([[0.8, 0.2]]), (20000, 1))
        draws = _sample_rows(probs, rng)
        assert draws.mean() == pytest.approx(0.2, abs=0.02)

    def test_deterministic_distribution(self, rng):
        probs = np.tile(np.array([[0.0, 0.0, 1.0]]), (50, 1))
        draws = _sample_rows(probs, rng)
        assert np.all(draws == 2)

    def test_row_independence(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        draws = _sample_rows(probs, np.random.default_rng(0))
        np.testing.assert_array_equal(draws, [0, 1])


class TestNumericHelpers:
    def test_softmax_matches_nn(self, rng):
        from repro.nn import Tensor, softmax as nn_softmax

        x = rng.normal(size=(4, 6)) * 10
        np.testing.assert_allclose(_softmax(x), nn_softmax(Tensor(x)).data, atol=1e-12)

    def test_softplus_matches_nn(self, rng):
        from repro.nn import Tensor, softplus as nn_softplus

        x = rng.normal(size=(20,)) * 5
        np.testing.assert_allclose(_softplus(x), nn_softplus(Tensor(x)).data, atol=1e-12)

    def test_softplus_extreme_stable(self):
        out = _softplus(np.array([-800.0, 800.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(800.0)


class TestGenerationStatistics:
    def test_iat_scale_floor_matches_loss_floor(self):
        """The inference scale floor must equal the training NLL floor.

        If they diverge, the model is sampled from a different
        distribution than it was trained to parameterize.
        """
        from repro.core.generate import _MIN_SCALE
        import inspect
        from repro.nn.losses import gaussian_nll

        default = inspect.signature(gaussian_nll).parameters["min_scale"].default
        assert _MIN_SCALE == default

    def test_generation_stochastic_across_streams(self, tiny_trained_package):
        """Distribution head on: streams must not be identical clones."""
        trace = tiny_trained_package.generate(20, np.random.default_rng(11))
        signatures = {tuple(s.event_names()) + tuple(np.round(s.interarrivals(), 3)) for s in trace}
        assert len(signatures) > 10

    def test_interarrivals_non_negative(self, tiny_trained_package):
        trace = tiny_trained_package.generate(30, np.random.default_rng(1))
        for stream in trace:
            assert np.all(stream.interarrivals() >= 0)

    def test_temperature_zero_like_behavior_not_required(self, tiny_trained_package):
        # High temperature flattens the event distribution: more distinct
        # event types should appear than at low temperature.
        hot = tiny_trained_package.generate(
            50, np.random.default_rng(2), temperature=3.0
        )
        cold = tiny_trained_package.generate(
            50, np.random.default_rng(2), temperature=0.3
        )
        hot_types = {e for s in hot for e in s.event_names()}
        cold_types = {e for s in cold for e in s.event_names()}
        assert len(hot_types) >= len(cold_types)
