"""Fused flat-buffer trainer: bit-equivalence, sharding, float32 arena.

The acceptance pins of the fused engine:

* In float64 the fused trainer is **bit-equivalent** to the legacy
  per-parameter training loop (the pre-engine ``train()``), on weights
  and per-epoch losses — verified against a literal re-creation of that
  loop below, for both random and length-bucketed batching.
* Sharded fit is a fixed plan: ``num_workers`` never changes the
  result, bit for bit.
* The float32 arena is the fast mode: statistically equivalent, weights
  restored to float64 on completion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPTGPT, CPTGPTConfig, TrainingConfig, train
from repro.core.train import (
    _batch_loss,
    bucketed_batches,
    encode_training_set,
    iterate_batches,
)
from repro.core.trainer import FusedTrainer, _tree_reduce

TINY = CPTGPTConfig(
    d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
)


def _reference_train(model, dataset, tokenizer, config):
    """The pre-engine training loop, verbatim: per-parameter Adam,
    per-parameter clip, per-epoch batch iteration."""
    rng = np.random.default_rng(config.seed)
    encoded = encode_training_set(dataset, tokenizer, model.config.max_len)
    params = model.parameters()
    moments_m = [np.zeros_like(p.data) for p in params]
    moments_v = [np.zeros_like(p.data) for p in params]
    step_count = 0
    lr = config.learning_rate
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    cached = (
        bucketed_batches(encoded, tokenizer, config.batch_size)
        if config.length_bucketing
        else None
    )

    def epoch_batches():
        if cached is None:
            return iterate_batches(
                encoded, tokenizer, config.batch_size, rng, config.shuffle
            )
        if config.shuffle:
            return (cached[i] for i in rng.permutation(len(cached)))
        return iter(cached)

    losses = []
    model.train()
    for epoch in range(config.epochs):
        if config.lr_schedule == "cosine" and config.epochs > 1:
            progress = epoch / (config.epochs - 1)
            floor = config.final_lr_fraction
            lr = config.learning_rate * (
                floor + (1.0 - floor) * 0.5 * (1.0 + np.cos(np.pi * progress))
            )
        sums = np.zeros(4)
        batches = 0
        for batch in epoch_batches():
            for param in params:
                param.grad = None
            total, event_l, iat_l, stop_l = _batch_loss(
                model, batch, config.loss_weights
            )
            total.backward()
            # Legacy clip_grad_norm.
            norm_sq = 0.0
            for param in params:
                if param.grad is not None:
                    norm_sq += float((param.grad**2).sum())
            norm = float(np.sqrt(norm_sq))
            if norm > config.grad_clip and norm > 0:
                scale = config.grad_clip / norm
                for param in params:
                    if param.grad is not None:
                        param.grad *= scale
            # Legacy Adam.step().
            step_count += 1
            bias1 = 1.0 - beta1**step_count
            bias2 = 1.0 - beta2**step_count
            for param, m, v in zip(params, moments_m, moments_v):
                if param.grad is None:
                    continue
                grad = param.grad
                m *= beta1
                m += (1 - beta1) * grad
                v *= beta2
                v += (1 - beta2) * grad * grad
                m_hat = m / bias1
                v_hat = v / bias2
                param.data = param.data - lr * m_hat / (np.sqrt(v_hat) + eps)
            sums += (float(total.item()), event_l, iat_l, stop_l)
            batches += 1
        losses.append(sums / max(batches, 1))
    model.eval()
    return losses


class TestBitEquivalence:
    @pytest.mark.parametrize("bucketing", [False, True])
    def test_fused_matches_legacy_loop(
        self, phone_trace, fitted_tokenizer, bucketing
    ):
        config = TrainingConfig(
            epochs=2, batch_size=32, seed=0, length_bucketing=bucketing
        )
        reference = CPTGPT(TINY, np.random.default_rng(0))
        ref_losses = _reference_train(
            reference, phone_trace, fitted_tokenizer, config
        )
        fused = CPTGPT(TINY, np.random.default_rng(0))
        result = train(fused, phone_trace, fitted_tokenizer, config)

        for epoch_stats, ref in zip(result.epochs, ref_losses):
            assert epoch_stats.total == ref[0]
            assert epoch_stats.event == ref[1]
            assert epoch_stats.interarrival == ref[2]
            assert epoch_stats.stop == ref[3]
        for fused_p, ref_p in zip(fused.parameters(), reference.parameters()):
            np.testing.assert_array_equal(fused_p.data, ref_p.data)

    def test_fused_matches_legacy_with_passed_optimizer(
        self, phone_trace, fitted_tokenizer
    ):
        """The table9 pattern: segments continuing one optimizer."""
        from repro.nn import Adam

        config = TrainingConfig(
            epochs=1, batch_size=32, seed=0, lr_schedule="constant"
        )
        reference = CPTGPT(TINY, np.random.default_rng(3))
        _reference_train(reference, phone_trace, fitted_tokenizer, config)
        _reference_train(reference, phone_trace, fitted_tokenizer, config)

        fused = CPTGPT(TINY, np.random.default_rng(3))
        optimizer = Adam(fused.parameters(), lr=config.learning_rate)
        train(fused, phone_trace, fitted_tokenizer, config, optimizer=optimizer)
        train(fused, phone_trace, fitted_tokenizer, config, optimizer=optimizer)
        # The reference restarts Adam moments per segment, so only the
        # first segment is bitwise-comparable; instead pin that the
        # carried-optimizer run is deterministic and reproducible.
        again = CPTGPT(TINY, np.random.default_rng(3))
        optimizer2 = Adam(again.parameters(), lr=config.learning_rate)
        train(again, phone_trace, fitted_tokenizer, config, optimizer=optimizer2)
        train(again, phone_trace, fitted_tokenizer, config, optimizer=optimizer2)
        for a, b in zip(fused.parameters(), again.parameters()):
            np.testing.assert_array_equal(a.data, b.data)


class TestShardedFit:
    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_num_workers_never_changes_the_result(
        self, phone_trace, fitted_tokenizer, num_workers
    ):
        config = TrainingConfig(epochs=1, batch_size=32, seed=0, grad_shards=4)
        single = CPTGPT(TINY, np.random.default_rng(0))
        result_single = train(single, phone_trace, fitted_tokenizer, config)
        multi = CPTGPT(TINY, np.random.default_rng(0))
        result_multi = train(
            multi, phone_trace, fitted_tokenizer, config, num_workers=num_workers
        )
        for a, b in zip(single.parameters(), multi.parameters()):
            np.testing.assert_array_equal(a.data, b.data)
        for s, m in zip(result_single.epochs, result_multi.epochs):
            assert s.total == m.total

    def test_sharded_statistically_matches_unsharded(
        self, phone_trace, fitted_tokenizer
    ):
        plain = CPTGPT(TINY, np.random.default_rng(0))
        r_plain = train(
            plain,
            phone_trace,
            fitted_tokenizer,
            TrainingConfig(epochs=2, batch_size=32, seed=0),
        )
        sharded = CPTGPT(TINY, np.random.default_rng(0))
        r_sharded = train(
            sharded,
            phone_trace,
            fitted_tokenizer,
            TrainingConfig(epochs=2, batch_size=32, seed=0, grad_shards=4),
        )
        # Different rounding/padding, same algorithm up to float error.
        assert r_sharded.final_loss == pytest.approx(r_plain.final_loss, rel=1e-2)

    def test_sharded_respects_frozen_parameters(
        self, phone_trace, fitted_tokenizer
    ):
        """A parameter with no gradient must stay untouched — and keep a
        zero step count — in the sharded path too, not just unsharded
        (a zero gradient segment is not the same as an absent one)."""
        from repro.nn import Adam

        config = TrainingConfig(epochs=1, batch_size=32, seed=0, grad_shards=4)
        model = CPTGPT(TINY, np.random.default_rng(0))
        frozen = model.event_head.fc2.weight
        frozen.requires_grad = False
        before = frozen.data.copy()
        optimizer = Adam(model.parameters(), lr=3e-3)
        train(model, phone_trace, fitted_tokenizer, config, optimizer=optimizer)
        np.testing.assert_array_equal(frozen.data, before)
        index = model.parameters().index(frozen)
        assert optimizer.step_counts[index] == 0
        assert (np.delete(optimizer.step_counts, index) > 0).all()

    def test_sharded_rejects_dropout(self, phone_trace, fitted_tokenizer):
        from dataclasses import replace

        model = CPTGPT(replace(TINY, dropout=0.1), np.random.default_rng(0))
        with pytest.raises(ValueError, match="dropout"):
            train(
                model,
                phone_trace,
                fitted_tokenizer,
                TrainingConfig(epochs=1, grad_shards=2),
            )

    def test_tree_reduce_fixed_pairing(self):
        buffers = [np.array([1e16]), np.array([1.0]), np.array([-1e16])]
        # stable_last_sum pairing: (b0 + b1) + b2 — NOT b0 + (b1 + b2).
        assert _tree_reduce([b.copy() for b in buffers])[0] == (1e16 + 1.0) + -1e16
        with pytest.raises(ValueError):
            _tree_reduce([])


class TestFloat32Arena:
    def test_float32_close_to_float64_and_restores_dtype(
        self, phone_trace, fitted_tokenizer
    ):
        config = TrainingConfig(epochs=2, batch_size=32, seed=0)
        exact = CPTGPT(TINY, np.random.default_rng(0))
        r64 = train(exact, phone_trace, fitted_tokenizer, config)
        fast = CPTGPT(TINY, np.random.default_rng(0))
        r32 = train(fast, phone_trace, fitted_tokenizer, config, float32=True)
        assert r32.final_loss == pytest.approx(r64.final_loss, rel=1e-2)
        for param in fast.parameters():
            assert param.data.dtype == np.float64

    def test_float32_generates(self, phone_trace, fitted_tokenizer):
        from repro.core import GeneratorPackage

        model = CPTGPT(TINY, np.random.default_rng(0))
        train(
            model,
            phone_trace,
            fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, seed=0),
            float32=True,
        )
        package = GeneratorPackage(
            model,
            fitted_tokenizer,
            phone_trace.initial_event_distribution(),
            "phone",
        )
        trace = package.generate(8, np.random.default_rng(0))
        assert len(trace) == 8


class TestTrainerValidation:
    def test_optimizer_and_resume_mutually_exclusive(
        self, phone_trace, fitted_tokenizer
    ):
        from repro.nn import Adam

        model = CPTGPT(TINY, np.random.default_rng(0))
        optimizer = Adam(model.parameters(), lr=1e-3)
        trainer = FusedTrainer(
            model, fitted_tokenizer, TrainingConfig(epochs=1), optimizer=optimizer
        )
        with pytest.raises(ValueError, match="not both"):
            trainer.fit(phone_trace, resume="unused.npz")

    def test_unknown_schedule_rejected(self, fitted_tokenizer):
        model = CPTGPT(TINY, np.random.default_rng(0))
        with pytest.raises(ValueError, match="lr_schedule"):
            FusedTrainer(
                model, fitted_tokenizer, TrainingConfig(lr_schedule="warmup")
            )

    def test_workers_without_shards_rejected(self, phone_trace, fitted_tokenizer):
        """num_workers without a shard plan would silently do nothing."""
        model = CPTGPT(TINY, np.random.default_rng(0))
        with pytest.raises(ValueError, match="grad_shards"):
            train(
                model,
                phone_trace,
                fitted_tokenizer,
                TrainingConfig(epochs=1),
                num_workers=4,
            )

    def test_checkpoint_every_without_path_rejected(
        self, phone_trace, fitted_tokenizer
    ):
        model = CPTGPT(TINY, np.random.default_rng(0))
        with pytest.raises(ValueError, match="checkpoint_path"):
            train(
                model,
                phone_trace,
                fitted_tokenizer,
                TrainingConfig(epochs=1),
                checkpoint_every=5,
            )

    def test_unbound_optimizer_rejected(self, phone_trace, fitted_tokenizer):
        """An optimizer over *other* parameter objects would gather no
        gradients and silently train nothing."""
        from repro.nn import Adam

        model = CPTGPT(TINY, np.random.default_rng(0))
        stranger = CPTGPT(TINY, np.random.default_rng(1))
        optimizer = Adam(stranger.parameters(), lr=1e-3)
        with pytest.raises(ValueError, match="rebind"):
            train(
                model,
                phone_trace,
                fitted_tokenizer,
                TrainingConfig(epochs=1),
                optimizer=optimizer,
            )

    def test_dtype_mismatched_optimizer_rejected(
        self, phone_trace, fitted_tokenizer
    ):
        from repro.nn import Adam

        model = CPTGPT(TINY, np.random.default_rng(0))
        optimizer = Adam(model.parameters(), lr=1e-3)  # float64 arena
        trainer = FusedTrainer(
            model,
            fitted_tokenizer,
            TrainingConfig(epochs=1),
            float32=True,
            optimizer=optimizer,
        )
        with pytest.raises(ValueError, match="arena"):
            trainer.fit(phone_trace)
