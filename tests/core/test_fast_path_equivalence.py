"""Fast-path ↔ autograd equivalence and continuous-batching semantics.

The contract this file enforces:

* float64 exact mode is **bit-equivalent** to the autograd forward pass,
* float64 throughput mode agrees to ~1e-12, float32 to ~1e-4,
* continuous batching recycles slots deterministically, produces the
  same per-stream statistics as static batching, and a stopped slot
  never leaks state into the stream that reuses it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InferenceEngine
from repro.nn import Tensor, no_grad


def _streams_for_equivalence(trace, low=4, high=80, limit=6):
    picked = [s for s in trace if low <= len(s) <= high]
    assert picked, "fixture trace has no usable streams"
    return picked[:limit]


class TestBitEquivalence:
    def test_float64_exact_is_bit_equivalent(
        self, tiny_trained_package, phone_trace, fitted_tokenizer
    ):
        """Every output field must equal the autograd forward bit for bit."""
        model = tiny_trained_package.model
        engine = InferenceEngine(model)
        assert engine.exact and engine.dtype == np.float64
        positions = 0
        for stream in _streams_for_equivalence(phone_trace):
            tokens = fitted_tokenizer.encode(stream)
            with no_grad():
                reference = model(Tensor(tokens[None, :, :]))
            cache = engine.new_cache(1, tokens.shape[0])
            for t in range(tokens.shape[0]):
                out = engine.step(tokens[None, t, :], cache)
                assert np.array_equal(
                    out["event_logits"][0], reference.event_logits.data[0, t]
                ), f"event logits differ at position {t}"
                assert out["iat_mean"][0] == reference.iat_mean.data[0, t]
                assert (
                    out["iat_raw_scale"][0] == reference.iat_raw_scale.data[0, t]
                )
                assert np.array_equal(
                    out["stop_logits"][0], reference.stop_logits.data[0, t]
                ), f"stop logits differ at position {t}"
                positions += 1
        assert positions > 30

    def test_float64_fast_mode_tolerance(
        self, tiny_trained_package, phone_trace, fitted_tokenizer
    ):
        """Throughput mode drops bitwise padding but stays at ~1e-12."""
        model = tiny_trained_package.model
        engine = InferenceEngine(model, exact=False)
        stream = _streams_for_equivalence(phone_trace)[0]
        tokens = fitted_tokenizer.encode(stream)
        with no_grad():
            reference = model(Tensor(tokens[None, :, :]))
        cache = engine.new_cache(1, tokens.shape[0])
        for t in range(tokens.shape[0]):
            out = engine.step(tokens[None, t, :], cache)
            np.testing.assert_allclose(
                out["event_logits"][0],
                reference.event_logits.data[0, t],
                atol=1e-12,
            )

    def test_float32_tolerance_tier(
        self, tiny_trained_package, phone_trace, fitted_tokenizer
    ):
        """The float32 fast path agrees to single-precision tolerance."""
        model = tiny_trained_package.model
        engine = InferenceEngine(model, dtype=np.float32)
        assert not engine.exact
        stream = _streams_for_equivalence(phone_trace)[0]
        tokens = fitted_tokenizer.encode(stream)
        with no_grad():
            reference = model(Tensor(tokens[None, :, :]))
        cache = engine.new_cache(1, tokens.shape[0])
        for t in range(tokens.shape[0]):
            out = engine.step(tokens[None, t, :], cache)
            assert out["event_logits"].dtype == np.float32
            np.testing.assert_allclose(
                out["event_logits"][0],
                reference.event_logits.data[0, t],
                atol=1e-3,
            )
            np.testing.assert_allclose(
                out["stop_logits"][0],
                reference.stop_logits.data[0, t],
                atol=1e-3,
            )

    def test_exact_mode_ragged_batch_matches_solo(self, tiny_trained_package, rng):
        """Ragged per-slot positions must not perturb other slots."""
        model = tiny_trained_package.model
        engine = InferenceEngine(model, exact=False)
        steps = 5
        tokens = [rng.random((steps, 9)) for _ in range(3)]
        # Solo runs, one cache per stream.
        solo = []
        for stream_tokens in tokens:
            cache = engine.new_cache(1, steps)
            outs = [
                engine.step(stream_tokens[None, t], cache)["event_logits"][0]
                for t in range(steps)
            ]
            solo.append(outs)
        # Batched run where slot 1 restarts mid-way (ragged positions).
        # One extra cache row so the ragged replay below has room.
        cache = engine.new_cache(3, steps + 1)
        batch_out = []
        for t in range(steps):
            current = np.stack([tokens[i][t] for i in range(3)])
            batch_out.append(engine.step(current, cache))
        # Slots that ran uninterrupted match their solo runs closely.
        for i in range(3):
            for t in range(steps):
                np.testing.assert_allclose(
                    batch_out[t]["event_logits"][i], solo[i][t], atol=1e-10
                )
        # Restart slot 0 and verify it reproduces its own solo prefix
        # even though slots 1-2 sit at deeper positions.
        cache.positions[0] = 0
        replay = engine.step(
            np.stack([tokens[0][0], tokens[1][4], tokens[2][4]]), cache
        )
        np.testing.assert_allclose(replay["event_logits"][0], solo[0][0], atol=1e-10)


class TestSlotRecycling:
    def test_recycled_slot_sees_no_stale_state(self, tiny_trained_package, rng):
        """A reset slot must behave exactly like a fresh cache (ring reuse).

        Exact mode pins the attention window to the cache size, so the
        recycled-slot and fresh-cache steps are comparable bit for bit.
        """
        engine = InferenceEngine(tiny_trained_package.model)
        steps = 8
        cache = engine.new_cache(2, steps)
        # Fill the cache with arbitrary history.
        for _ in range(steps - 1):
            engine.step(rng.random((2, 9)), cache)
        # Recycle slot 0: position reset, rows left dirty on purpose.
        cache.positions[0] = 0
        probe = rng.random((2, 9))
        recycled = engine.step(probe, cache)
        fresh_cache = engine.new_cache(1, steps)
        fresh = engine.step(probe[:1], fresh_cache)
        np.testing.assert_array_equal(
            recycled["event_logits"][0], fresh["event_logits"][0]
        )
        np.testing.assert_array_equal(
            recycled["stop_logits"][0], fresh["stop_logits"][0]
        )

    def test_continuous_deterministic_under_fixed_seed(self, tiny_trained_package):
        a = tiny_trained_package.generate(60, np.random.default_rng(9), batch_size=16)
        b = tiny_trained_package.generate(60, np.random.default_rng(9), batch_size=16)
        assert len(a) == len(b) == 60
        for s1, s2 in zip(a, b):
            assert s1.event_names() == s2.event_names()
            np.testing.assert_allclose(s1.timestamps(), s2.timestamps())

    def test_continuous_matches_static_distributions(self, tiny_trained_package):
        """Slot recycling must not bias lengths or event frequencies."""
        continuous = tiny_trained_package.generate(
            400, np.random.default_rng(3), batch_size=32
        )
        static = tiny_trained_package.generate(
            400, np.random.default_rng(4), batch_size=32, continuous=False
        )
        assert len(continuous) == len(static) == 400
        len_c = np.array([len(s) for s in continuous])
        len_s = np.array([len(s) for s in static])
        assert abs(len_c.mean() - len_s.mean()) < 0.8
        events_c = [e for s in continuous for e in s.event_names()]
        events_s = [e for s in static for e in s.event_names()]
        for name in set(events_s):
            share_c = events_c.count(name) / len(events_c)
            share_s = events_s.count(name) / len(events_s)
            assert share_c == pytest.approx(share_s, abs=0.05)

    def test_stopped_slot_never_contributes_further_tokens(
        self, tiny_trained_package
    ):
        """Regression: once a stream samples stop, it must be finalized.

        Every returned stream ends at its stop sample (or the horizon),
        so no stream may exceed the horizon and the population size is
        exact even when slots are recycled many times over.
        """
        limit = 12
        trace = tiny_trained_package.generate(
            150, np.random.default_rng(5), batch_size=8, max_len=limit
        )
        assert len(trace) == 150
        for stream in trace:
            assert 1 <= len(stream) <= limit
            stream.validate()

    def test_small_batch_greater_count_recycles(self, tiny_trained_package):
        """count >> batch_size forces heavy recycling; count must be exact."""
        trace = tiny_trained_package.generate(
            97, np.random.default_rng(2), batch_size=4
        )
        assert len(trace) == 97

    def test_max_len_one_degenerates_to_bootstrap(self, tiny_trained_package):
        """Regression: a horizon of 1 leaves nothing to step."""
        trace = tiny_trained_package.generate(
            9, np.random.default_rng(6), max_len=1
        )
        assert len(trace) == 9
        assert all(len(s) == 1 for s in trace)


class TestEngineCacheReuse:
    def test_release_and_reacquire_pools_allocation(self, tiny_trained_package):
        engine = InferenceEngine(tiny_trained_package.model, exact=False)
        cache = engine.new_cache(4, 16)
        buffer_id = id(cache.keys[0])
        engine.release_cache(cache)
        again = engine.new_cache(4, 16)
        assert id(again.keys[0]) == buffer_id
        assert int(again.positions.max()) == 0

    def test_rebinds_after_parameter_replacement(self, tiny_trained_package, rng):
        """Engines stay valid when training replaces parameter arrays."""
        model = tiny_trained_package.model
        engine = InferenceEngine(model, exact=False)
        tokens = rng.random((1, 9))
        cache = engine.new_cache(1, 4)
        before = engine.step(tokens, cache)["event_logits"].copy()
        state = model.state_dict()
        state["event_head.fc2.bias"] = state["event_head.fc2.bias"] + 1.0
        model.load_state_dict(state)  # replaces every param array
        cache2 = engine.new_cache(1, 4)
        after = engine.step(tokens, cache2)["event_logits"]
        np.testing.assert_allclose(after, before + 1.0, atol=1e-12)
