"""Supervised stream workers and fork-pool teardown guarantees."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.core import sharding
from repro.core.sharding import (
    fork_available,
    spawn_stream_worker,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires os.fork"
)


def _collect(handle, *, deadline=30.0):
    items = []
    start = time.monotonic()
    while not handle.exhausted() and not handle.failed:
        assert time.monotonic() - start < deadline, "stream worker hung"
        item = handle.get_nowait()
        if item is None:
            time.sleep(0.005)
        else:
            items.append(item)
    while (item := handle.get_nowait()) is not None:
        items.append(item)
    return items


def _count_task(index, resume):
    for value in range(resume, 10):
        yield (index, value)


def _failing_task(index, resume):
    yield (index, 0)
    raise RuntimeError("shard exploded")


def _endless_task(index, resume):
    value = resume
    while True:
        yield value
        value += 1
        time.sleep(0.001)


@needs_fork
class TestStreamWorker:
    def test_streams_items_in_order(self):
        handle = spawn_stream_worker(_count_task, 3, 0)
        try:
            assert _collect(handle) == [(3, v) for v in range(10)]
            assert handle.exhausted()
            assert not handle.failed
        finally:
            handle.abandon()

    def test_resume_cursor_skips_delivered_prefix(self):
        handle = spawn_stream_worker(_count_task, 1, 7)
        try:
            assert _collect(handle) == [(1, 7), (1, 8), (1, 9)]
        finally:
            handle.abandon()

    def test_task_failure_reported_in_band(self):
        handle = spawn_stream_worker(_failing_task, 0, 0)
        try:
            start = time.monotonic()
            while not handle.failed:
                assert time.monotonic() - start < 30.0
                handle.get_nowait()
                time.sleep(0.005)
            assert "shard exploded" in handle.error
        finally:
            handle.abandon()

    def test_kill_leaves_a_dead_unfinished_worker(self):
        handle = spawn_stream_worker(_endless_task, 0, 0, queue_items=2)
        try:
            handle.kill()
            handle.process.join(timeout=10.0)
            assert not handle.alive()
            assert not handle.finished  # died without a "done" marker
        finally:
            handle.abandon()

    def test_heartbeat_refreshes_while_blocked_on_full_queue(self):
        handle = spawn_stream_worker(
            _endless_task, 0, 0, queue_items=1, beat_interval=0.05
        )
        try:
            time.sleep(0.5)  # queue fills; nobody consumes
            assert handle.alive()
            assert handle.heartbeat_age() < 0.4
        finally:
            handle.abandon()

    def test_abandon_is_idempotent_and_untracks(self):
        handle = spawn_stream_worker(_count_task, 0, 0)
        handle.abandon()
        handle.abandon()
        assert handle not in sharding._LIVE_WORKERS
        assert not handle.alive()

    def test_queue_items_validated(self):
        with pytest.raises(ValueError):
            spawn_stream_worker(_count_task, 0, 0, queue_items=0)


@needs_fork
class TestPoolTeardown:
    def test_interrupt_terminates_children(self):
        context = multiprocessing.get_context("fork")
        children = []
        with pytest.raises(KeyboardInterrupt):
            with sharding._supervised_pool(context, 2) as pool:
                children = list(pool._pool)
                raise KeyboardInterrupt
        deadline = time.monotonic() + 10.0
        for child in children:
            child.join(max(0.0, deadline - time.monotonic()))
            assert not child.is_alive()
        assert pool not in sharding._LIVE_POOLS

    def test_clean_exit_joins_children(self):
        context = multiprocessing.get_context("fork")
        with sharding._supervised_pool(context, 2) as pool:
            children = list(pool._pool)
        for child in children:
            assert not child.is_alive()
        assert pool not in sharding._LIVE_POOLS
