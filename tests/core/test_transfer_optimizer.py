"""Transfer learning's optimizer-carrying path (the rebinding bugfix).

``core/train.py`` documents that passing an existing optimizer into
``train()`` continues its moment estimates for fine-tuning.  But
``fine_tune`` deep-copies the base model, so an optimizer created over
the base's parameters holds the *pre-copy* ``Parameter`` objects —
before the fix, stepping it would have silently trained the base model
while the adapted copy never moved.  ``fine_tune(optimizer=...)`` now
rebinds the optimizer onto the adapted copy and
``derive_hourly_models`` threads one optimizer through the chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPTGPT, CPTGPTConfig, TrainingConfig, derive_hourly_models, fine_tune, train
from repro.nn import Adam
from repro.trace import generate_hourly_traces

TINY = CPTGPTConfig(
    d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
)


@pytest.fixture
def pretrained(phone_trace, fitted_tokenizer):
    model = CPTGPT(TINY, np.random.default_rng(0))
    optimizer = Adam(model.parameters(), lr=3e-3)
    train(
        model,
        phone_trace,
        fitted_tokenizer,
        TrainingConfig(epochs=1, batch_size=32, seed=0),
        optimizer=optimizer,
    )
    return model, optimizer


class TestFineTuneOptimizerRebinding:
    def test_base_model_left_untouched(
        self, pretrained, phone_trace_alt, fitted_tokenizer
    ):
        """Regression: the moment-carrying path must not train the base."""
        base, optimizer = pretrained
        before = {name: p.data.copy() for name, p in base.named_parameters()}
        adapted, result = fine_tune(
            base,
            phone_trace_alt,
            fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, learning_rate=1e-3, seed=0),
            optimizer=optimizer,
        )
        after = {name: p.data.copy() for name, p in base.named_parameters()}
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])
        # ...while the adapted copy genuinely trained.
        assert any(
            not np.array_equal(p.data, before[name])
            for name, p in adapted.named_parameters()
        )
        assert np.isfinite(result.final_loss)

    def test_moments_persist_across_hours(
        self, pretrained, phone_trace_alt, fitted_tokenizer
    ):
        base, optimizer = pretrained
        steps_before = optimizer.step_counts
        assert (steps_before > 0).all()  # pretraining populated them
        moments_before = optimizer.state_buffers()["m"].copy()
        adapted, _ = fine_tune(
            base,
            phone_trace_alt,
            fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, learning_rate=1e-3, seed=0),
            optimizer=optimizer,
        )
        # Step counts continued from the pretrain run (not reset to 0),
        # and the optimizer now drives the adapted model's parameters.
        assert (optimizer.step_counts > steps_before).all()
        assert not np.array_equal(optimizer.state_buffers()["m"], moments_before)
        assert optimizer.params[0] is adapted.parameters()[0]

    def test_carried_optimizer_changes_the_finetune(
        self, pretrained, phone_trace_alt, fitted_tokenizer
    ):
        """Warm moments produce a different (deterministic) trajectory
        than a cold restart — i.e. the carrying is real."""
        base, optimizer = pretrained
        config = TrainingConfig(epochs=1, batch_size=32, learning_rate=1e-3, seed=0)
        warm, _ = fine_tune(
            base, phone_trace_alt, fitted_tokenizer, config, optimizer=optimizer
        )
        cold, _ = fine_tune(base, phone_trace_alt, fitted_tokenizer, config)
        assert any(
            not np.array_equal(a.data, b.data)
            for a, b in zip(warm.parameters(), cold.parameters())
        )


class TestDeriveHourlyModelsCarry:
    def _hourly(self):
        return generate_hourly_traces(40, [9, 10, 11], seed=5)

    def test_carries_moments_by_default(self, fitted_tokenizer):
        hourly = self._hourly()
        scratch = TrainingConfig(epochs=1, batch_size=32, seed=0)
        finetune = TrainingConfig(epochs=1, batch_size=32, learning_rate=1e-3, seed=0)
        carried = derive_hourly_models(
            lambda: CPTGPT(TINY, np.random.default_rng(0)),
            hourly, fitted_tokenizer, scratch, finetune,
        )
        cold = derive_hourly_models(
            lambda: CPTGPT(TINY, np.random.default_rng(0)),
            hourly, fitted_tokenizer, scratch, finetune,
            carry_optimizer=False,
        )
        # Hour 9 (scratch) matches; later hours differ because moments
        # carried into their fine-tunes.
        h9c = carried.models[9].state_dict()
        h9f = cold.models[9].state_dict()
        for name in h9c:
            np.testing.assert_array_equal(h9c[name], h9f[name])
        h11c = carried.models[11].state_dict()
        h11f = cold.models[11].state_dict()
        assert any(not np.array_equal(h11c[k], h11f[k]) for k in h11c)

    def test_earlier_hours_untouched_by_later_finetunes(self, fitted_tokenizer):
        hourly = self._hourly()
        ensemble = derive_hourly_models(
            lambda: CPTGPT(TINY, np.random.default_rng(0)),
            hourly,
            fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, seed=0),
            TrainingConfig(epochs=1, batch_size=32, learning_rate=1e-3, seed=0),
        )
        # Retrain just hour 9 standalone: its weights must equal the
        # ensemble's hour-9 model (later fine-tunes didn't leak back).
        standalone = CPTGPT(TINY, np.random.default_rng(0))
        optimizer = Adam(standalone.parameters(), lr=3e-3)
        train(
            standalone,
            hourly[9],
            fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, seed=0),
            optimizer=optimizer,
        )
        ensemble_h9 = ensemble.models[9].state_dict()
        for name, value in standalone.state_dict().items():
            np.testing.assert_array_equal(ensemble_h9[name], value)
