"""Checkpoint/resume determinism for the fused trainer.

The pin: interrupting a run at any step boundary and resuming from the
checkpoint reproduces the uninterrupted run **bit-exactly** — same
weights, same per-epoch losses, same optimizer moments — including
mid-epoch interrupts (the checkpoint carries the epoch-start RNG state
and the partial loss accumulators) and sharded runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPTGPT, CPTGPTConfig, TrainingConfig, train
from repro.core.trainer import TrainerCheckpoint

TINY = CPTGPTConfig(
    d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
)


def _params(model):
    return {name: p.data.copy() for name, p in model.named_parameters()}


def _assert_same_run(result_a, result_b, model_a, model_b):
    assert len(result_a.epochs) == len(result_b.epochs)
    for a, b in zip(result_a.epochs, result_b.epochs):
        assert a.total == b.total
        assert a.event == b.event
        assert a.interarrival == b.interarrival
        assert a.stop == b.stop
    state_a, state_b = _params(model_a), _params(model_b)
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name])


class TestResumeDeterminism:
    @pytest.mark.parametrize("interrupt_step", [3, 7, 10])
    def test_mid_epoch_resume_is_bit_exact(
        self, phone_trace, fitted_tokenizer, tmp_path, interrupt_step
    ):
        """Stop after ``interrupt_step`` steps (4 batches/epoch at this
        scale, so step 3 is mid-epoch, 7 mid-epoch-2, 10 an epoch
        boundary), resume, and compare to an uninterrupted run."""
        config = TrainingConfig(epochs=3, batch_size=32, seed=0)
        full = CPTGPT(TINY, np.random.default_rng(0))
        result_full = train(full, phone_trace, fitted_tokenizer, config)

        path = tmp_path / "ck.npz"
        captured = {}
        original = TrainerCheckpoint.save

        def capture(self, save_path):
            original(self, save_path)
            if self.steps == interrupt_step and "ck" not in captured:
                captured["ck"] = TrainerCheckpoint.load(save_path)

        TrainerCheckpoint.save = capture
        try:
            interrupted = CPTGPT(TINY, np.random.default_rng(0))
            train(
                interrupted,
                phone_trace,
                fitted_tokenizer,
                config,
                checkpoint_path=path,
                checkpoint_every=interrupt_step,
            )
        finally:
            TrainerCheckpoint.save = original
        assert "ck" in captured

        resumed = CPTGPT(TINY, np.random.default_rng(99))  # weights from ck
        result_resumed = train(
            resumed, phone_trace, fitted_tokenizer, config, resume=captured["ck"]
        )
        _assert_same_run(result_full, result_resumed, full, resumed)
        assert result_resumed.steps == result_full.steps

    def test_resume_from_path_roundtrip(
        self, phone_trace, fitted_tokenizer, tmp_path
    ):
        config = TrainingConfig(epochs=2, batch_size=32, seed=0)
        path = tmp_path / "ck.npz"
        full = CPTGPT(TINY, np.random.default_rng(0))
        result_full = train(full, phone_trace, fitted_tokenizer, config)

        # Interrupt after epoch 1 by training a 1-epoch slice of the
        # same cosine-over-2-epochs schedule, then resuming to 2.
        part = CPTGPT(TINY, np.random.default_rng(0))
        train(
            part,
            phone_trace,
            fitted_tokenizer,
            config,
            checkpoint_path=path,
            checkpoint_every=5,  # 5 batches/epoch: boundary checkpoint
        )
        ck = TrainerCheckpoint.load(path)
        assert ck.epoch == config.epochs  # final checkpoint: run complete
        resumed = CPTGPT(TINY, np.random.default_rng(7))
        result_resumed = train(
            resumed, phone_trace, fitted_tokenizer, config, resume=path
        )
        # Fully-trained checkpoint: nothing left to run, stats restored.
        _assert_same_run(result_full, result_resumed, full, resumed)

    def test_sharded_resume_matches_sharded_full(
        self, phone_trace, fitted_tokenizer, tmp_path
    ):
        config = TrainingConfig(epochs=2, batch_size=32, seed=0, grad_shards=4)
        full = CPTGPT(TINY, np.random.default_rng(0))
        result_full = train(full, phone_trace, fitted_tokenizer, config)

        path = tmp_path / "ck.npz"
        captured = {}
        original = TrainerCheckpoint.save

        def capture(self, save_path):
            original(self, save_path)
            if self.steps == 4 and "ck" not in captured:
                captured["ck"] = TrainerCheckpoint.load(save_path)

        TrainerCheckpoint.save = capture
        try:
            train(
                CPTGPT(TINY, np.random.default_rng(0)),
                phone_trace,
                fitted_tokenizer,
                config,
                checkpoint_path=path,
                checkpoint_every=4,
            )
        finally:
            TrainerCheckpoint.save = original

        resumed = CPTGPT(TINY, np.random.default_rng(5))
        result_resumed = train(
            resumed,
            phone_trace,
            fitted_tokenizer,
            config,
            resume=captured["ck"],
            num_workers=2,  # workers still never change the result
        )
        _assert_same_run(result_full, result_resumed, full, resumed)


class TestCheckpointValidation:
    def _checkpoint(self, phone_trace, fitted_tokenizer, tmp_path, config):
        path = tmp_path / "ck.npz"
        model = CPTGPT(TINY, np.random.default_rng(0))
        train(model, phone_trace, fitted_tokenizer, config, checkpoint_path=path)
        return path

    def test_config_mismatch_rejected(
        self, phone_trace, fitted_tokenizer, tmp_path
    ):
        config = TrainingConfig(epochs=1, batch_size=32, seed=0)
        path = self._checkpoint(phone_trace, fitted_tokenizer, tmp_path, config)
        model = CPTGPT(TINY, np.random.default_rng(0))
        with pytest.raises(ValueError, match="learning_rate"):
            train(
                model,
                phone_trace,
                fitted_tokenizer,
                config.replace(learning_rate=1e-4, epochs=2),
                resume=path,
            )

    def test_epochs_may_grow_on_resume(
        self, phone_trace, fitted_tokenizer, tmp_path
    ):
        config = TrainingConfig(epochs=1, batch_size=32, seed=0)
        path = self._checkpoint(phone_trace, fitted_tokenizer, tmp_path, config)
        model = CPTGPT(TINY, np.random.default_rng(0))
        result = train(
            model,
            phone_trace,
            fitted_tokenizer,
            config.replace(epochs=2),
            resume=path,
        )
        assert len(result.epochs) == 2

    def test_dtype_mismatch_rejected(self, phone_trace, fitted_tokenizer, tmp_path):
        config = TrainingConfig(epochs=1, batch_size=32, seed=0)
        path = self._checkpoint(phone_trace, fitted_tokenizer, tmp_path, config)
        model = CPTGPT(TINY, np.random.default_rng(0))
        with pytest.raises(ValueError, match="float"):
            train(
                model,
                phone_trace,
                fitted_tokenizer,
                config.replace(epochs=2),
                resume=path,
                float32=True,
            )

    def test_non_checkpoint_archive_rejected(self, tmp_path):
        from repro.nn.serialization import write_npz

        path = tmp_path / "other.npz"
        write_npz(path, {"x": np.zeros(3)}, {"kind": "something-else"})
        with pytest.raises(ValueError, match="not a trainer checkpoint"):
            TrainerCheckpoint.load(path)

    def test_checkpoint_roundtrip_preserves_rng_state(
        self, phone_trace, fitted_tokenizer, tmp_path
    ):
        config = TrainingConfig(epochs=1, batch_size=32, seed=0)
        path = self._checkpoint(phone_trace, fitted_tokenizer, tmp_path, config)
        ck = TrainerCheckpoint.load(path)
        ck.save(tmp_path / "again.npz")
        again = TrainerCheckpoint.load(tmp_path / "again.npz")
        assert again.rng_state == ck.rng_state
        assert again.steps == ck.steps
        for name in ck.weights:
            np.testing.assert_array_equal(again.weights[name], ck.weights[name])
            np.testing.assert_array_equal(again.adam_m[name], ck.adam_m[name])
