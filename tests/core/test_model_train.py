"""CPT-GPT model and training loop tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CPTGPT,
    CPTGPTConfig,
    TrainingConfig,
    encode_training_set,
    iterate_batches,
    train,
)
from repro.core.train import _build_batch
from repro.nn import Tensor
from repro.trace import Stream, TraceDataset


@pytest.fixture
def tiny_model(rng):
    config = CPTGPTConfig(
        d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=64
    )
    return CPTGPT(config, rng)


class TestModel:
    def test_forward_shapes(self, tiny_model, rng):
        tokens = Tensor(rng.normal(size=(3, 10, 9)))
        preds = tiny_model(tokens)
        assert preds.event_logits.shape == (3, 10, 6)
        assert preds.iat_mean.shape == (3, 10)
        assert preds.iat_raw_scale.shape == (3, 10)
        assert preds.stop_logits.shape == (3, 10, 2)

    def test_ablated_model_has_no_scale_head(self, rng):
        config = CPTGPTConfig(
            d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32,
            max_len=64, distribution_head=False,
        )
        model = CPTGPT(config, rng)
        preds = model(Tensor(rng.normal(size=(2, 5, 9))))
        assert preds.iat_raw_scale is None

    def test_paper_config_parameter_count(self):
        # §5.1: ~725K parameters for the published configuration.
        model = CPTGPT(CPTGPTConfig.paper(), np.random.default_rng(0))
        assert 5e5 < model.num_parameters() < 1.1e6

    def test_d_token_property(self):
        assert CPTGPTConfig(num_event_types=6).d_token == 9
        assert CPTGPTConfig(num_event_types=5).d_token == 8

    def test_config_dict_roundtrip(self):
        config = CPTGPTConfig(d_model=48, max_len=100)
        assert CPTGPTConfig.from_dict(config.to_dict()) == config

    def test_causality(self, tiny_model, rng):
        """Changing a future token must not affect earlier predictions."""
        tokens = rng.normal(size=(1, 8, 9))
        before = tiny_model(Tensor(tokens)).event_logits.data[:, :4].copy()
        perturbed = tokens.copy()
        perturbed[0, 6] += 10.0
        after = tiny_model(Tensor(perturbed)).event_logits.data[:, :4]
        np.testing.assert_allclose(before, after, atol=1e-10)


class TestBatching:
    def test_encode_drops_singletons_and_long(self, fitted_tokenizer):
        streams = [
            Stream.from_arrays("a", "phone", [0.0], ["SRV_REQ"]),
            Stream.from_arrays("b", "phone", [0.0, 1.0], ["SRV_REQ", "S1_CONN_REL"]),
            Stream.from_arrays(
                "c", "phone", list(np.arange(200.0)), ["SRV_REQ", "S1_CONN_REL"] * 100
            ),
        ]
        dataset = TraceDataset(streams=streams)
        encoded = encode_training_set(dataset, fitted_tokenizer, max_len=64)
        assert len(encoded) == 1  # only "b" survives

    def test_encode_empty_raises(self, fitted_tokenizer):
        dataset = TraceDataset(
            streams=[Stream.from_arrays("a", "phone", [0.0], ["SRV_REQ"])]
        )
        with pytest.raises(ValueError, match="no trainable streams"):
            encode_training_set(dataset, fitted_tokenizer, max_len=64)

    def test_build_batch_targets_shifted(self, fitted_tokenizer):
        stream = Stream.from_arrays(
            "a", "phone", [0.0, 5.0, 9.0], ["ATCH", "HO", "S1_CONN_REL"]
        )
        batch = _build_batch([fitted_tokenizer.encode(stream)], fitted_tokenizer)
        assert batch.tokens.shape == (1, 2, 9)
        # Targets are tokens 1..2: HO then S1_CONN_REL.
        vocab = fitted_tokenizer.vocabulary
        np.testing.assert_array_equal(
            batch.event_targets[0], [vocab.index("HO"), vocab.index("S1_CONN_REL")]
        )
        np.testing.assert_array_equal(batch.stop_targets[0], [0, 1])
        assert batch.mask.all()

    def test_build_batch_padding_masked(self, fitted_tokenizer):
        short = Stream.from_arrays("a", "phone", [0.0, 1.0], ["SRV_REQ", "S1_CONN_REL"])
        long = Stream.from_arrays(
            "b", "phone", [0.0, 1.0, 2.0, 3.0],
            ["SRV_REQ", "S1_CONN_REL", "SRV_REQ", "S1_CONN_REL"],
        )
        batch = _build_batch(
            [fitted_tokenizer.encode(short), fitted_tokenizer.encode(long)],
            fitted_tokenizer,
        )
        assert batch.mask.shape == (2, 3)
        np.testing.assert_array_equal(batch.mask[0], [True, False, False])
        np.testing.assert_array_equal(batch.mask[1], [True, True, True])

    def test_iterate_batches_covers_all(self, fitted_tokenizer, phone_trace, rng):
        encoded = encode_training_set(phone_trace, fitted_tokenizer, max_len=96)
        total = sum(
            batch.tokens.shape[0]
            for batch in iterate_batches(encoded, fitted_tokenizer, 16, rng)
        )
        assert total == len(encoded)


class TestTraining:
    def test_loss_decreases(self, tiny_model, phone_trace, fitted_tokenizer):
        result = train(
            tiny_model,
            phone_trace,
            fitted_tokenizer,
            TrainingConfig(epochs=4, batch_size=32, learning_rate=3e-3, seed=0),
        )
        assert len(result.epochs) == 4
        assert result.epochs[-1].total < result.epochs[0].total
        assert result.wall_time_seconds > 0
        assert result.steps > 0

    def test_invalid_schedule_rejected(self, tiny_model, phone_trace, fitted_tokenizer):
        with pytest.raises(ValueError, match="lr_schedule"):
            train(
                tiny_model,
                phone_trace,
                fitted_tokenizer,
                TrainingConfig(epochs=1, lr_schedule="warmup"),
            )

    def test_ablated_model_trains(self, rng, phone_trace, fitted_tokenizer):
        config = CPTGPTConfig(
            d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32,
            max_len=96, distribution_head=False,
        )
        model = CPTGPT(config, rng)
        result = train(
            model, phone_trace, fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, seed=0),
        )
        assert np.isfinite(result.final_loss)

    def test_loss_weights_change_total(self, rng, phone_trace, fitted_tokenizer):
        config = CPTGPTConfig(
            d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
        )
        totals = []
        for weights in ((1.0, 1.0, 1.0), (3.0, 1.0, 1.0)):
            model = CPTGPT(config, np.random.default_rng(0))
            result = train(
                model, phone_trace, fitted_tokenizer,
                TrainingConfig(epochs=1, batch_size=32, seed=0, loss_weights=weights,
                               shuffle=False),
            )
            totals.append(result.epochs[0].total)
        assert totals[0] != totals[1]

    def test_final_loss_requires_epochs(self):
        from repro.core.train import TrainingResult

        with pytest.raises(ValueError):
            TrainingResult().final_loss

    def test_training_config_replace(self):
        config = TrainingConfig(epochs=10)
        updated = config.replace(epochs=3)
        assert updated.epochs == 3
        assert updated.batch_size == config.batch_size
