"""Multi-process sharded generation: determinism, parity, plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sharding import fork_available, run_sharded, shard_counts, shard_rngs


class TestShardHelpers:
    def test_shard_counts_cover_population(self):
        assert shard_counts(10, 3) == [4, 3, 3]
        assert shard_counts(3, 4) == [1, 1, 1, 0]
        assert shard_counts(0, 2) == [0, 0]
        assert sum(shard_counts(1001, 7)) == 1001

    def test_shard_counts_rejects_bad_input(self):
        with pytest.raises(ValueError):
            shard_counts(-1, 2)
        with pytest.raises(ValueError):
            shard_counts(5, 0)

    def test_shard_rngs_deterministic_and_independent(self):
        a = shard_rngs(np.random.default_rng(7), 3)
        b = shard_rngs(np.random.default_rng(7), 3)
        draws_a = [r.random(4) for r in a]
        draws_b = [r.random(4) for r in b]
        for da, db in zip(draws_a, draws_b):
            np.testing.assert_array_equal(da, db)
        # Distinct shards draw distinct streams.
        assert not np.allclose(draws_a[0], draws_a[1])

    def test_shard_rngs_advance_parent_once(self):
        """The parent RNG must advance identically for any shard count."""
        r1 = np.random.default_rng(5)
        shard_rngs(r1, 2)
        r2 = np.random.default_rng(5)
        shard_rngs(r2, 8)
        np.testing.assert_array_equal(r1.random(4), r2.random(4))

    def test_run_sharded_inline_matches_processes(self):
        def task(i):
            return [i * 10 + j for j in range(3)]

        inline = run_sharded(task, 4, num_workers=1)
        forked = run_sharded(task, 4, num_workers=2)
        assert inline == forked == [task(i) for i in range(4)]


@pytest.mark.skipif(not fork_available(), reason="platform cannot fork workers")
class TestShardedPackageGeneration:
    def test_sharded_count_and_determinism(self, tiny_trained_package):
        a = tiny_trained_package.generate(
            50, np.random.default_rng(11), num_workers=2
        )
        b = tiny_trained_package.generate(
            50, np.random.default_rng(11), num_workers=2
        )
        assert len(a) == len(b) == 50
        for s1, s2 in zip(a, b):
            assert s1.ue_id == s2.ue_id
            assert s1.event_names() == s2.event_names()
            np.testing.assert_allclose(s1.timestamps(), s2.timestamps())

    def test_sharded_matches_inline_shards(self, tiny_trained_package):
        """Worker processes must not change the result: the sharded
        output is defined by the shard split, not by where shards run."""
        from repro.core import sharding

        forked = tiny_trained_package.generate(
            30, np.random.default_rng(3), num_workers=2
        )
        original = sharding.fork_available
        sharding.fork_available = lambda: False
        try:
            inline = tiny_trained_package.generate(
                30, np.random.default_rng(3), num_workers=2
            )
        finally:
            sharding.fork_available = original
        assert len(forked) == len(inline) == 30
        for s1, s2 in zip(forked, inline):
            assert s1.ue_id == s2.ue_id
            assert s1.event_names() == s2.event_names()
            np.testing.assert_allclose(s1.timestamps(), s2.timestamps())

    def test_sharded_distribution_parity(self, tiny_trained_package):
        """Sharding must not change per-stream statistics."""
        single = tiny_trained_package.generate(300, np.random.default_rng(21))
        sharded = tiny_trained_package.generate(
            300, np.random.default_rng(22), num_workers=3
        )
        assert len(sharded) == 300
        mean_single = np.mean([len(s) for s in single])
        mean_sharded = np.mean([len(s) for s in sharded])
        assert mean_sharded == pytest.approx(mean_single, rel=0.25)
        events_single = [e for s in single for e in s.event_names()]
        events_sharded = [e for s in sharded for e in s.event_names()]
        for name in set(events_single):
            share_1 = events_single.count(name) / len(events_single)
            share_n = events_sharded.count(name) / len(events_sharded)
            assert share_n == pytest.approx(share_1, abs=0.05)

    def test_float32_sharded(self, tiny_trained_package):
        trace = tiny_trained_package.generate(
            40, np.random.default_rng(1), num_workers=2, float32=True
        )
        assert len(trace) == 40
        for stream in trace:
            stream.validate()
