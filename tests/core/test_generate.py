"""Generation: engine equivalence, stop semantics, packaging, transfer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CPTGPT,
    CPTGPTConfig,
    GeneratorPackage,
    InferenceEngine,
    TrainingConfig,
    derive_hourly_models,
    fine_tune,
    random_ue_id,
)
from repro.nn import Tensor, no_grad
from repro.trace import generate_hourly_traces


class TestInferenceEngine:
    def test_matches_training_forward(self, tiny_trained_package, phone_trace, fitted_tokenizer):
        """The KV-cache step path must equal the full forward pass."""
        model = tiny_trained_package.model
        stream = next(s for s in phone_trace if 5 <= len(s) <= 60)
        tokens = fitted_tokenizer.encode(stream)
        with no_grad():
            reference = model(Tensor(tokens[None, :, :]))
        engine = InferenceEngine(model)
        cache = engine.new_cache(1, tokens.shape[0])
        for t in range(tokens.shape[0]):
            out = engine.step(tokens[None, t, :], cache)
            np.testing.assert_allclose(
                out["event_logits"][0], reference.event_logits.data[0, t], atol=1e-10
            )
            np.testing.assert_allclose(
                out["iat_mean"][0], reference.iat_mean.data[0, t], atol=1e-10
            )
            np.testing.assert_allclose(
                out["stop_logits"][0], reference.stop_logits.data[0, t], atol=1e-10
            )

    def test_batched_step_matches_individual(self, tiny_trained_package, rng):
        model = tiny_trained_package.model
        engine = InferenceEngine(model)
        tokens = rng.random((3, 9))
        batch_cache = engine.new_cache(3, 4)
        batched = engine.step(tokens, batch_cache)
        for i in range(3):
            solo_cache = engine.new_cache(1, 4)
            solo = engine.step(tokens[i : i + 1], solo_cache)
            np.testing.assert_allclose(
                solo["event_logits"][0], batched["event_logits"][i], atol=1e-10
            )

    def test_position_limit_enforced(self, tiny_trained_package, rng):
        engine = InferenceEngine(tiny_trained_package.model)
        max_len = tiny_trained_package.model.config.max_len
        cache = engine.new_cache(1, max_len)
        cache.position = max_len
        with pytest.raises(ValueError, match="exceeds model max_len"):
            engine.step(rng.random((1, 9)), cache)


class TestGeneration:
    def test_generates_requested_count(self, tiny_trained_package, rng):
        trace = tiny_trained_package.generate(17, rng, batch_size=8)
        assert len(trace) == 17

    def test_zero_count(self, tiny_trained_package, rng):
        assert len(tiny_trained_package.generate(0, rng)) == 0

    def test_negative_count_rejected(self, tiny_trained_package, rng):
        with pytest.raises(ValueError):
            tiny_trained_package.generate(-1, rng)

    def test_streams_respect_max_len(self, tiny_trained_package, rng):
        trace = tiny_trained_package.generate(20, rng, max_len=12)
        assert all(1 <= len(s) <= 12 for s in trace)

    def test_max_len_beyond_model_rejected(self, tiny_trained_package, rng):
        with pytest.raises(ValueError, match="trained horizon"):
            tiny_trained_package.generate(1, rng, max_len=10_000)

    def test_start_time_offsets_timestamps(self, tiny_trained_package, rng):
        trace = tiny_trained_package.generate(5, rng, start_time=7200.0)
        for stream in trace:
            assert stream.timestamps()[0] >= 7200.0

    def test_timestamps_non_decreasing(self, tiny_trained_package, rng):
        trace = tiny_trained_package.generate(15, rng)
        for stream in trace:
            stream.validate()

    def test_deterministic_given_seed(self, tiny_trained_package):
        a = tiny_trained_package.generate(6, np.random.default_rng(5))
        b = tiny_trained_package.generate(6, np.random.default_rng(5))
        for s1, s2 in zip(a, b):
            assert s1.event_names() == s2.event_names()
            np.testing.assert_allclose(s1.timestamps(), s2.timestamps())

    def test_first_events_follow_initial_distribution(self, tiny_trained_package):
        trace = tiny_trained_package.generate(300, np.random.default_rng(0))
        dist = tiny_trained_package.initial_event_distribution
        firsts = [s.events[0].event for s in trace if len(s)]
        for name, share in dist.items():
            observed = sum(1 for f in firsts if f == name) / len(firsts)
            assert observed == pytest.approx(share, abs=0.12)

    def test_device_type_tagged(self, tiny_trained_package, rng):
        trace = tiny_trained_package.generate(3, rng)
        assert all(s.device_type == "phone" for s in trace)

    def test_invalid_initial_distribution_rejected(self, tiny_trained_package):
        with pytest.raises(ValueError, match="sums to"):
            GeneratorPackage(
                tiny_trained_package.model,
                tiny_trained_package.tokenizer,
                {"SRV_REQ": 0.5},
                "phone",
            )

    def test_unknown_initial_event_rejected(self, tiny_trained_package):
        with pytest.raises(ValueError, match="unknown event"):
            GeneratorPackage(
                tiny_trained_package.model,
                tiny_trained_package.tokenizer,
                {"NOPE": 1.0},
                "phone",
            )


class TestPackagePersistence:
    def test_save_load_roundtrip(self, tiny_trained_package, tmp_path):
        path = tmp_path / "package.npz"
        tiny_trained_package.save(path)
        restored = GeneratorPackage.load(path)
        assert restored.device_type == "phone"
        assert restored.model.config == tiny_trained_package.model.config
        a = tiny_trained_package.generate(4, np.random.default_rng(3))
        b = restored.generate(4, np.random.default_rng(3))
        for s1, s2 in zip(a, b):
            assert s1.event_names() == s2.event_names()
            np.testing.assert_allclose(s1.timestamps(), s2.timestamps())


class TestRandomUEID:
    def test_format(self, rng):
        ue_id = random_ue_id(rng)
        assert len(ue_id) == 16
        assert all(c in "0123456789abcdef" for c in ue_id)

    def test_uniqueness(self, rng):
        ids = {random_ue_id(rng) for _ in range(500)}
        assert len(ids) == 500


class TestTransfer:
    def test_fine_tune_leaves_base_untouched(self, tiny_trained_package, phone_trace_alt, fitted_tokenizer):
        base = tiny_trained_package.model
        before = {k: v.copy() for k, v in base.state_dict().items()}
        adapted, result = fine_tune(
            base, phone_trace_alt, fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, learning_rate=1e-3, seed=0),
        )
        after = base.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])
        assert any(
            not np.array_equal(adapted.state_dict()[k], before[k]) for k in before
        )
        assert result.wall_time_seconds > 0

    def test_derive_hourly_models(self, fitted_tokenizer):
        hourly = generate_hourly_traces(40, [9, 10, 11], seed=5)
        config = CPTGPTConfig(
            d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
        )
        ensemble = derive_hourly_models(
            lambda: CPTGPT(config, np.random.default_rng(0)),
            hourly,
            fitted_tokenizer,
            TrainingConfig(epochs=1, batch_size=32, seed=0),
            TrainingConfig(epochs=1, batch_size=32, learning_rate=1e-3, seed=0),
        )
        assert set(ensemble.models) == {9, 10, 11}
        assert ensemble.total_wall_time > 0
        # Hour 10's model must differ from hour 9's (it was fine-tuned).
        h9 = ensemble.models[9].state_dict()
        h10 = ensemble.models[10].state_dict()
        assert any(not np.array_equal(h9[k], h10[k]) for k in h9)

    def test_empty_hourly_rejected(self, fitted_tokenizer):
        with pytest.raises(ValueError, match="empty"):
            derive_hourly_models(
                lambda: None, {}, fitted_tokenizer,
                TrainingConfig(), TrainingConfig(),
            )
