"""Training batch pipeline: pre-extracted targets and cached bucketing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CPTGPT,
    CPTGPTConfig,
    EncodedStream,
    TrainingConfig,
    bucketed_batches,
    encode_training_set,
    train,
)
from repro.core.train import _build_batch
from repro.trace import Stream, TraceDataset


class TestEncodedStream:
    def test_targets_extracted_once(self, fitted_tokenizer):
        stream = Stream.from_arrays(
            "a", "phone", [0.0, 5.0, 9.0], ["ATCH", "HO", "S1_CONN_REL"]
        )
        matrix = fitted_tokenizer.encode(stream)
        encoded = EncodedStream.from_matrix(matrix, fitted_tokenizer)
        assert encoded.length == 2
        vocab = fitted_tokenizer.vocabulary
        np.testing.assert_array_equal(
            encoded.event_targets, [vocab.index("HO"), vocab.index("S1_CONN_REL")]
        )
        np.testing.assert_array_equal(encoded.stop_targets, [0, 1])
        np.testing.assert_array_equal(encoded.tokens, matrix[:-1])

    def test_encode_training_set_returns_encoded_streams(
        self, phone_trace, fitted_tokenizer
    ):
        encoded = encode_training_set(phone_trace, fitted_tokenizer, max_len=96)
        assert all(isinstance(item, EncodedStream) for item in encoded)

    def test_build_batch_accepts_raw_matrices(self, fitted_tokenizer):
        """Backwards compatibility: raw (L, d_token) matrices still work."""
        stream = Stream.from_arrays(
            "a", "phone", [0.0, 1.0, 2.0], ["SRV_REQ", "HO", "S1_CONN_REL"]
        )
        matrix = fitted_tokenizer.encode(stream)
        from_matrix = _build_batch([matrix], fitted_tokenizer)
        from_encoded = _build_batch(
            [EncodedStream.from_matrix(matrix, fitted_tokenizer)], fitted_tokenizer
        )
        np.testing.assert_array_equal(from_matrix.tokens, from_encoded.tokens)
        np.testing.assert_array_equal(
            from_matrix.event_targets, from_encoded.event_targets
        )
        np.testing.assert_array_equal(from_matrix.mask, from_encoded.mask)


class TestBucketedBatches:
    def test_batches_cover_all_and_sort_by_length(
        self, phone_trace, fitted_tokenizer
    ):
        encoded = encode_training_set(phone_trace, fitted_tokenizer, max_len=96)
        batches = bucketed_batches(encoded, fitted_tokenizer, 16)
        assert sum(b.tokens.shape[0] for b in batches) == len(encoded)
        # Within the sorted order, batch padded widths are monotonic.
        widths = [b.tokens.shape[1] for b in batches]
        assert widths == sorted(widths)

    def test_cached_batches_identical_across_builds(
        self, phone_trace, fitted_tokenizer
    ):
        """Bucketing is deterministic: cached arrays equal a rebuild."""
        encoded = encode_training_set(phone_trace, fitted_tokenizer, max_len=96)
        first = bucketed_batches(encoded, fitted_tokenizer, 16)
        second = bucketed_batches(encoded, fitted_tokenizer, 16)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.tokens, b.tokens)
            np.testing.assert_array_equal(a.iat_targets, b.iat_targets)

    def test_training_with_bucketing_and_caching(self, phone_trace, fitted_tokenizer):
        config = CPTGPTConfig(
            d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
        )
        model = CPTGPT(config, np.random.default_rng(0))
        result = train(
            model,
            phone_trace,
            fitted_tokenizer,
            TrainingConfig(epochs=3, batch_size=32, seed=0, length_bucketing=True),
        )
        assert len(result.epochs) == 3
        assert np.isfinite(result.final_loss)

    def test_bucketed_training_deterministic(self, phone_trace, fitted_tokenizer):
        config = CPTGPTConfig(
            d_model=16, num_layers=1, num_heads=2, d_ff=32, head_hidden=32, max_len=96
        )
        losses = []
        for _ in range(2):
            model = CPTGPT(config, np.random.default_rng(0))
            result = train(
                model,
                phone_trace,
                fitted_tokenizer,
                TrainingConfig(epochs=2, batch_size=32, seed=0, length_bucketing=True),
            )
            losses.append(result.final_loss)
        assert losses[0] == pytest.approx(losses[1], rel=1e-12)


class TestSingletonHandling:
    def test_single_target_stream(self, fitted_tokenizer):
        dataset = TraceDataset(
            streams=[
                Stream.from_arrays(
                    "b", "phone", [0.0, 1.0], ["SRV_REQ", "S1_CONN_REL"]
                )
            ]
        )
        encoded = encode_training_set(dataset, fitted_tokenizer, max_len=64)
        batch = _build_batch(encoded, fitted_tokenizer)
        assert batch.tokens.shape == (1, 1, 9)
        assert batch.mask.all()
