"""Configuration objects and experiment-scale plumbing."""

from __future__ import annotations

import pytest

from repro.core import CPTGPTConfig, TrainingConfig
from repro.experiments import MEDIUM, SMOKE, ExperimentScale


class TestCPTGPTConfig:
    def test_paper_preset_shape(self):
        config = CPTGPTConfig.paper()
        # §5.1: 2 attention blocks, embedding 128, MLP hidden 1024.
        assert config.num_layers == 2
        assert config.d_model == 128
        assert config.d_ff == 1024
        assert config.max_len == 500

    def test_paper_preset_5g(self):
        config = CPTGPTConfig.paper(num_event_types=5)
        assert config.d_token == 8

    def test_frozen(self):
        config = CPTGPTConfig()
        with pytest.raises(AttributeError):
            config.d_model = 1


class TestTrainingConfig:
    def test_defaults_unbiased_batching(self):
        # The stop-hazard bias analysis (DESIGN.md §8) made this the default.
        assert TrainingConfig().length_bucketing is False

    def test_replace_preserves_other_fields(self):
        config = TrainingConfig(epochs=7, loss_weights=(3.0, 1.0, 1.0))
        updated = config.replace(learning_rate=1e-4)
        assert updated.epochs == 7
        assert updated.loss_weights == (3.0, 1.0, 1.0)
        assert updated.learning_rate == 1e-4

    @pytest.mark.parametrize("grad_clip", [0.0, -1.0])
    def test_non_positive_grad_clip_rejected(self, grad_clip):
        """Regression: grad_clip=0 used to silently zero every gradient
        through clip_grad_norm's `norm > max_norm` branch."""
        with pytest.raises(ValueError, match="grad_clip"):
            TrainingConfig(grad_clip=grad_clip)
        with pytest.raises(ValueError, match="grad_clip"):
            TrainingConfig().replace(grad_clip=grad_clip)

    def test_invalid_grad_shards_rejected(self):
        with pytest.raises(ValueError, match="grad_shards"):
            TrainingConfig(grad_shards=0)

    def test_grad_shards_round_trips_through_replace(self):
        assert TrainingConfig(grad_shards=4).replace(epochs=2).grad_shards == 4


class TestExperimentScales:
    def test_presets_are_ordered(self):
        assert SMOKE.train_ues < MEDIUM.train_ues
        assert SMOKE.cpt_epochs < MEDIUM.cpt_epochs

    def test_smoke_trades_bias_for_speed(self):
        assert SMOKE.cpt_length_bucketing is True
        assert MEDIUM.cpt_length_bucketing is False

    def test_with_overrides(self):
        custom = SMOKE.with_overrides(train_ues=42)
        assert custom.train_ues == 42
        assert custom.cpt_epochs == SMOKE.cpt_epochs

    def test_custom_scale_validates_netshare_multiples(self):
        from repro.baselines import NetShareConfig

        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad", ns_config=NetShareConfig(max_len=101, batch_generation=5)
            )
