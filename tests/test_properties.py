"""Hypothesis property tests on core invariants across modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EmpiricalDistribution
from repro.nn import Tensor, softmax
from repro.statemachine import LTE_EVENTS, LTE_SPEC, StateMachine, replay_events
from repro.trace import Stream, SyntheticTraceConfig, generate_trace

# ----------------------------------------------------------------------
# State machine / replay invariants
# ----------------------------------------------------------------------
events_list = st.lists(st.sampled_from(list(LTE_EVENTS)), min_size=0, max_size=40)


@given(events_list)
@settings(max_examples=100, deadline=None)
def test_replay_accounting_invariants(names):
    """Counted <= total; violations <= counted; sojourns non-negative."""
    pairs = [(float(i), name) for i, name in enumerate(names)]
    replay = replay_events(pairs, LTE_SPEC)
    assert replay.counted_events <= replay.total_events
    assert replay.violating_events <= replay.counted_events
    for durations in replay.sojourns.values():
        assert all(d >= 0 for d in durations)


@given(events_list)
@settings(max_examples=100, deadline=None)
def test_replay_is_deterministic(names):
    pairs = [(float(i), name) for i, name in enumerate(names)]
    a = replay_events(pairs, LTE_SPEC)
    b = replay_events(pairs, LTE_SPEC)
    assert a.violating_events == b.violating_events
    assert a.sojourns == b.sojourns


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(2, 40))
@settings(max_examples=25, deadline=None)
def test_random_legal_walks_always_replay_clean(seed, steps):
    """Any walk that only takes legal transitions replays with 0 violations."""
    rng = np.random.default_rng(seed)
    machine = StateMachine(LTE_SPEC, LTE_SPEC.initial)
    pairs = []
    t = 0.0
    for _ in range(steps):
        legal = machine.legal_events()
        event = legal[rng.integers(len(legal))]
        assert machine.step(event)
        t += float(rng.exponential(10.0))
        pairs.append((t, event))
    replay = replay_events(pairs, LTE_SPEC)
    assert replay.violating_events == 0


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_synthetic_traces_always_legal(seed):
    """The operator simulator never emits illegal sequences, any seed."""
    trace = generate_trace(SyntheticTraceConfig(num_ues=5, seed=seed))
    from repro.statemachine import replay_dataset

    assert replay_dataset(trace.replay_pairs(), LTE_SPEC).violating_events == 0


# ----------------------------------------------------------------------
# Tensor / nn invariants
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(-50, 50), min_size=2, max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_softmax_simplex_invariant(values):
    out = softmax(Tensor(np.array(values))).data
    assert out.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(out >= 0)


@given(
    st.lists(st.floats(-10, 10), min_size=1, max_size=20),
    st.floats(-10, 10),
)
@settings(max_examples=60, deadline=None)
def test_softmax_shift_invariance(values, shift):
    x = np.array(values)
    a = softmax(Tensor(x)).data
    b = softmax(Tensor(x + shift)).data
    np.testing.assert_allclose(a, b, atol=1e-9)


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=16))
@settings(max_examples=60, deadline=None)
def test_sum_backward_is_ones(values):
    t = Tensor(np.array(values), requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones(len(values)))


# ----------------------------------------------------------------------
# Empirical distribution invariants
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(0.001, 1e4), min_size=1, max_size=60),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_empirical_samples_within_hull(samples, seed):
    dist = EmpiricalDistribution(np.array(samples))
    draws = dist.sample(np.random.default_rng(seed), size=50)
    assert draws.min() >= min(samples) - 1e-9
    assert draws.max() <= max(samples) + 1e-9


# ----------------------------------------------------------------------
# Stream / interarrival invariants
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=30),
    st.integers(0, 5),
)
@settings(max_examples=60, deadline=None)
def test_interarrivals_reconstruct_timestamps(deltas, first_event_index):
    times = np.cumsum([abs(d) for d in deltas])
    names = [list(LTE_EVENTS)[first_event_index]] * len(deltas)
    stream = Stream.from_arrays("u", "phone", times.tolist(), names)
    interarrivals = stream.interarrivals()
    assert interarrivals[0] == 0.0
    np.testing.assert_allclose(
        times[0] + np.cumsum(interarrivals), times, rtol=1e-9, atol=1e-6
    )
