"""TopologyScenario composition, precedence rules, and the registry."""

from __future__ import annotations

import pytest

from repro.api import TOPOLOGIES, available_topologies
from repro.api.scenario import ScenarioSpec
from repro.topology import (
    NO_CHAOS,
    CellOutage,
    ChaosSchedule,
    NetworkTopology,
    RandomWaypointMobility,
    StationaryMobility,
    TopologyScenario,
    get_topology,
    line_topology,
)
from repro.workload import Cohort


def _cohort(name: str, **kwargs) -> Cohort:
    spec = ScenarioSpec(name=f"{name}-spec", num_ues=10, seed=1)
    return Cohort(name=name, scenario=spec, **kwargs)


def _scenario(**kwargs) -> TopologyScenario:
    return TopologyScenario(
        name="test", topology=line_topology("ln", 4, prefix="c"), **kwargs
    )


class TestPrecedence:
    def test_mobility_cohort_field_wins(self):
        scenario = _scenario(
            default_mobility=StationaryMobility(),
            mobility={"a": RandomWaypointMobility(mean_dwell_seconds=100.0)},
        )
        cohort = _cohort("a", mobility=RandomWaypointMobility(
            mean_dwell_seconds=42.0
        ))
        assert scenario.mobility_for(cohort).mean_dwell_seconds == 42.0

    def test_mobility_scenario_map_then_default(self):
        scenario = _scenario(
            default_mobility=StationaryMobility(),
            mobility={"a": RandomWaypointMobility(mean_dwell_seconds=100.0)},
        )
        assert scenario.mobility_for(_cohort("a")).mean_dwell_seconds == 100.0
        assert isinstance(scenario.mobility_for(_cohort("b")), StationaryMobility)

    def test_mobility_by_name_resolved(self):
        scenario = _scenario()
        cohort = _cohort("a", mobility="random-waypoint")
        assert isinstance(scenario.mobility_for(cohort), RandomWaypointMobility)

    def test_placement_cohort_field_wins(self):
        scenario = _scenario(placements={"a": ("c01",)})
        cohort = _cohort("a", cells=("c02", "c03"))
        assert scenario.placement_for(cohort) == (2, 3)

    def test_placement_scenario_map_then_all_cells(self):
        scenario = _scenario(placements={"a": ("c01",)})
        assert scenario.placement_for(_cohort("a")) == (1,)
        assert scenario.placement_for(_cohort("b")) == (0, 1, 2, 3)


class TestValidation:
    def test_placement_must_name_real_cells(self):
        with pytest.raises(KeyError):
            _scenario(placements={"a": ("ghost",)})

    def test_empty_placement_rejected(self):
        with pytest.raises(ValueError):
            _scenario(placements={"a": ()})

    def test_mobility_must_be_model_instances(self):
        with pytest.raises(TypeError):
            _scenario(mobility={"a": "stationary"})

    def test_chaos_validated_against_topology(self):
        with pytest.raises(KeyError):
            _scenario(
                chaos=ChaosSchedule(
                    events=(CellOutage(cell="ghost", start=0.0, duration=1.0),)
                )
            )

    def test_with_chaos_revalidates(self):
        scenario = _scenario()
        chaos = ChaosSchedule(
            events=(CellOutage(cell="c00", start=0.0, duration=1.0),)
        )
        assert scenario.with_chaos(chaos).chaos is chaos
        assert scenario.chaos is NO_CHAOS  # original untouched


class TestRegistry:
    def test_builtin_presets_registered(self):
        names = available_topologies()
        for expected in (
            "metro-commute",
            "stadium-cell-kill",
            "region-degrade",
            "firmware-storm-by-ta",
            "motorway",
        ):
            assert expected in names

    def test_aliases_resolve(self):
        assert TOPOLOGIES.get("cell-kill").name == "stadium-cell-kill"
        assert TOPOLOGIES.get("corridor").name == "motorway"

    def test_get_topology_name_instance_and_graph(self):
        by_name = get_topology("motorway")
        assert by_name.name == "motorway"
        assert get_topology(by_name) is by_name
        graph = line_topology("bare", 3)
        wrapped = get_topology(graph)
        assert isinstance(wrapped, TopologyScenario)
        assert wrapped.topology is graph

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_topology("atlantis")

    def test_preset_chaos_targets_exist(self):
        # Every registered preset validates its own chaos schedule
        # against its own graph (construction would have raised), and
        # summaries render.
        for name in available_topologies():
            scenario = TOPOLOGIES.get(name)
            assert isinstance(scenario.topology, NetworkTopology)
            assert scenario.name in (name, scenario.name)
            assert scenario.summary()
