"""Topology runtime end-to-end: conformance, determinism, chaos effects.

These are the contract tests of the subsystem: every injected
handover/TAU/reboot sequence must be legal under the LTE/NR state
machines (zero oracle violations), the annotated timeline must be
bit-identical for any worker count, chaos must reproduce from the seed,
and the chaos scenarios must have their advertised macroscopic effect
(cell-kill → neighbor surge, degrade → hotter region, storm → detach
wave).
"""

from __future__ import annotations

import pytest

from repro.topology import ChaosSchedule, RegionDegrade
from repro.validate import OracleValidator
from repro.workload import CellTimelineEvent, TimelineEvent, Workload, get_workload


def _engine(name: str, scale: float, seed: int = 3, **kwargs) -> Workload:
    population = get_workload(name).scaled(scale)
    return Workload(population, seed=seed, **kwargs)


class TestConformance:
    @pytest.mark.parametrize(
        "workload, topology",
        [
            ("handover-storm", None),  # preset default: motorway
            ("stadium-flash-crowd", "stadium-cell-kill"),
            ("iot-firmware-storm", "firmware-storm-by-ta"),
        ],
    )
    def test_zero_oracle_violations(self, workload, topology):
        engine = _engine(workload, 0.02, topology=topology)
        spec = engine.population.cohorts[0].scenario.machine_spec
        oracle = OracleValidator(spec)
        engine.run(validators=(oracle,), simulate=False)
        report = oracle.report()
        assert report.violating_events == 0, report.as_dict()
        assert report.event_rate == 0.0
        assert report.stream_rate == 0.0


class TestDeterminism:
    def test_worker_count_never_changes_the_timeline(self):
        runs = [
            list(_engine("handover-storm", 0.05, num_workers=n).events())
            for n in (1, 4)
        ]
        assert runs[0] == runs[1]
        assert len(runs[0]) > 0

    def test_chaos_reproducible_from_seed(self):
        first = list(
            _engine("iot-firmware-storm", 0.03,
                    topology="firmware-storm-by-ta").events()
        )
        second = list(
            _engine("iot-firmware-storm", 0.03,
                    topology="firmware-storm-by-ta").events()
        )
        assert first == second

    def test_seed_changes_the_injections(self):
        a = list(_engine("handover-storm", 0.03, seed=3).events())
        b = list(_engine("handover-storm", 0.03, seed=4).events())
        assert a != b


class TestAnnotatedEvents:
    def test_topology_runs_yield_cell_events(self):
        engine = _engine("handover-storm", 0.03)
        cells = set(engine.topology.topology.cell_names)
        seen = set()
        for event in engine.events():
            assert isinstance(event, CellTimelineEvent)
            assert event.cell in cells
            seen.add(event.cell)
        assert len(seen) > 1  # the convoy actually crosses cells

    def test_plain_runs_yield_plain_events(self):
        engine = _engine("iot-firmware-storm", 0.02)
        event = next(iter(engine.events()))
        assert isinstance(event, TimelineEvent)
        assert not isinstance(event, CellTimelineEvent)

    def test_chaos_without_topology_rejected(self):
        population = get_workload("iot-firmware-storm").scaled(0.02)
        with pytest.raises(ValueError):
            Workload(population, seed=3, chaos="firmware-storm-by-ta")

    def test_chaos_off_disables_the_schedule(self):
        engine = _engine("stadium-flash-crowd", 0.02,
                         topology="stadium-cell-kill", chaos="off")
        assert not engine.chaos


class TestRegionalSimulation:
    def test_per_region_reports_partition_the_run(self):
        engine = _engine("handover-storm", 0.05)
        report = engine.simulate(workers=4)
        regions = engine.topology.topology.regions
        assert set(report.per_region) == set(regions)
        assert sum(
            report.region(r).num_events for r in regions
        ) == report.num_events
        assert report.cell_connects  # cells saw connections

    def test_region_degrade_inflates_service_times(self):
        # A 4x service-time degrade on mwr1 during the run window must
        # make that region's pool measurably busier; with the shared
        # cost RNG drawn in arrival order the two runs differ only by
        # the degrade scaling.
        degrade = ChaosSchedule(events=(
            RegionDegrade(region="mwr1", start=8 * 3600.0,
                          duration=2 * 3600.0, capacity_factor=0.25),
        ))
        base = _engine("handover-storm", 0.05, chaos="off").simulate(workers=4)
        hot = _engine("handover-storm", 0.05, chaos=degrade).simulate(workers=4)
        assert hot.region("mwr1").utilization > base.region("mwr1").utilization

    def test_autoscale_per_region_shares_the_window_grid(self):
        engine = _engine("handover-storm", 0.05)
        trace = engine.autoscale(window_seconds=600.0)
        assert set(trace.per_region) == set(engine.topology.topology.regions)
        for sub in trace.per_region.values():
            assert len(sub.workers) == len(trace.workers)


class TestChaosEffects:
    def test_cell_kill_triggers_neighbor_surge(self):
        # The acceptance scenario: killing the stadium cell mid-match
        # must mass-re-register the crowd at the four ring cells.
        kwargs = dict(topology="stadium-cell-kill")
        with_kill = _engine(
            "stadium-flash-crowd", 0.02, **kwargs
        ).simulate(workers=4)
        without = _engine(
            "stadium-flash-crowd", 0.02, chaos="off", **kwargs
        ).simulate(workers=4)
        ring = ("north", "east", "south", "west")
        surge = sum(with_kill.cell_connects.get(c, 0) for c in ring)
        calm = sum(without.cell_connects.get(c, 0) for c in ring)
        assert surge > calm * 1.5, (surge, calm)
        # The dead cell itself loses connects to the refuge cells.
        assert (
            with_kill.cell_connects.get("stadium", 0)
            < without.cell_connects.get("stadium", 0)
        )

    def test_firmware_storm_injects_detach_wave(self):
        kwargs = dict(topology="firmware-storm-by-ta")
        stormy = _engine("iot-firmware-storm", 0.03, **kwargs)
        calm = _engine("iot-firmware-storm", 0.03, chaos="off", **kwargs)
        count = lambda e: sum(  # noqa: E731
            1 for ev in e.events() if ev.event == "DTCH"
        )
        assert count(stormy) > count(calm)
