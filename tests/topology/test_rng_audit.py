"""Source-level RNG audit of the topology subsystem.

Every random draw under ``src/repro/topology`` must flow from a
``SeedSequence`` spawn key (the per-UE recipe in
:meth:`TopologyRuntime._ue_rng`) so injections are independent of shard
layout and worker count.  A bare ``default_rng(...)`` call, module-level
RNG, or legacy ``np.random.seed`` would silently break the determinism
contract — this test greps the sources so the rule is enforced, not just
documented.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro.topology

TOPOLOGY_SRC = Path(repro.topology.__file__).parent

#: default_rng calls must seed from a SeedSequence, allowing whitespace
#: and line breaks between the call and its argument.
_SEEDED = re.compile(r"default_rng\(\s*(np\.random\.)?SeedSequence")
_ANY_CALL = re.compile(r"default_rng\(")

#: Legacy global-state RNG APIs: banned outright.
_BANNED = (
    re.compile(r"np\.random\.seed\("),
    re.compile(r"np\.random\.(rand|randn|randint|random|choice|shuffle)\("),
    re.compile(r"\bRandomState\("),
)


def _sources() -> list[Path]:
    files = sorted(TOPOLOGY_SRC.glob("*.py"))
    assert files, f"no sources under {TOPOLOGY_SRC}"
    return files


def test_every_default_rng_is_seed_sequence_keyed():
    for path in _sources():
        text = path.read_text()
        calls = len(_ANY_CALL.findall(text))
        seeded = len(_SEEDED.findall(text))
        assert calls == seeded, (
            f"{path.name}: {calls - seeded} default_rng call(s) not keyed "
            "by a SeedSequence — topology randomness must use spawn keys"
        )


def test_no_global_rng_state():
    for path in _sources():
        text = path.read_text()
        for pattern in _BANNED:
            assert not pattern.search(text), (
                f"{path.name}: matches banned RNG pattern {pattern.pattern}"
            )


def test_runtime_rng_keyed_by_cohort_and_ue():
    # The audit above is textual; check the actual recipe: the per-UE
    # stream depends only on (seed, cohort, ue) — two runtimes agree,
    # and distinct UEs/cohorts/seeds diverge.
    from repro.topology.runtime import TopologyRuntime
    from repro.topology.scenario import get_topology
    from repro.workload import get_workload

    scenario = get_topology("motorway")
    population = get_workload("handover-storm").scaled(0.02)

    def draw(seed: int, cohort: str, ue: str) -> float:
        runtime = TopologyRuntime(scenario, population, seed=seed)
        return float(runtime._ue_rng(cohort, ue).uniform())

    assert draw(5, "convoy", "ue3") == draw(5, "convoy", "ue3")
    assert draw(5, "convoy", "ue3") != draw(5, "convoy", "ue4")
    assert draw(5, "convoy", "ue3") != draw(5, "ambient", "ue3")
    assert draw(5, "convoy", "ue3") != draw(6, "convoy", "ue3")
