"""RNG-discipline audit of the topology subsystem.

Every random draw under ``src/repro/topology`` must flow from a
``SeedSequence`` spawn key (the per-UE recipe in
:meth:`TopologyRuntime._ue_rng`) so injections are independent of shard
layout and worker count.  The audit is enforced by the ``repro lint``
rng-discipline rule (R001), which resolves import aliases through the
AST instead of grepping source text: a bare ``default_rng(...)``,
legacy ``np.random.*`` API, or stdlib ``random`` call anywhere in the
package fails this test.
"""

from __future__ import annotations

from pathlib import Path

import repro.topology
from repro.analysis import run_lint, select_rules

TOPOLOGY_SRC = Path(repro.topology.__file__).parent


def test_topology_passes_rng_discipline_lint():
    result = run_lint([TOPOLOGY_SRC], rules=select_rules(["rng-discipline"]))
    assert result.files, f"no sources under {TOPOLOGY_SRC}"
    assert not result.errors, result.errors
    assert not result.findings, "\n".join(
        f.format() for f in result.findings
    )


def test_runtime_rng_keyed_by_cohort_and_ue():
    # The lint audit is static; check the actual recipe: the per-UE
    # stream depends only on (seed, cohort, ue) — two runtimes agree,
    # and distinct UEs/cohorts/seeds diverge.
    from repro.topology.runtime import TopologyRuntime
    from repro.topology.scenario import get_topology
    from repro.workload import get_workload

    scenario = get_topology("motorway")
    population = get_workload("handover-storm").scaled(0.02)

    def draw(seed: int, cohort: str, ue: str) -> float:
        runtime = TopologyRuntime(scenario, population, seed=seed)
        return float(runtime._ue_rng(cohort, ue).uniform())

    assert draw(5, "convoy", "ue3") == draw(5, "convoy", "ue3")
    assert draw(5, "convoy", "ue3") != draw(5, "convoy", "ue4")
    assert draw(5, "convoy", "ue3") != draw(5, "ambient", "ue3")
    assert draw(5, "convoy", "ue3") != draw(6, "convoy", "ue3")
