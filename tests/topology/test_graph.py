"""NetworkTopology graph: validation, queries, builders, BFS paths."""

from __future__ import annotations

import pytest

from repro.topology import (
    Cell,
    NetworkTopology,
    grid_topology,
    line_topology,
    ring_topology,
)


def _triangle() -> NetworkTopology:
    return NetworkTopology(
        name="tri",
        cells=(
            Cell("a", "ta0", "r0"),
            Cell("b", "ta0", "r0"),
            Cell("c", "ta1", "r1"),
        ),
        edges=(("a", "b"), ("b", "c"), ("c", "a")),
    )


class TestValidation:
    def test_duplicate_cell_names_rejected(self):
        with pytest.raises(ValueError):
            NetworkTopology(
                name="t",
                cells=(Cell("a", "ta", "r"), Cell("a", "ta", "r")),
                edges=(),
            )

    def test_edge_to_unknown_cell_rejected(self):
        with pytest.raises(ValueError):
            NetworkTopology(
                name="t", cells=(Cell("a", "ta", "r"),), edges=(("a", "zz"),)
            )

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            NetworkTopology(
                name="t", cells=(Cell("a", "ta", "r"),), edges=(("a", "a"),)
            )

    def test_tracking_area_split_across_regions_rejected(self):
        with pytest.raises(ValueError):
            NetworkTopology(
                name="t",
                cells=(Cell("a", "ta0", "r0"), Cell("b", "ta0", "r1")),
                edges=(("a", "b"),),
            )

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            NetworkTopology(name="t", cells=(), edges=())


class TestQueries:
    def test_index_and_cell_roundtrip(self):
        topo = _triangle()
        for i, name in enumerate(topo.cell_names):
            assert topo.index(name) == i
            assert topo.cell(name).name == name

    def test_neighbors_symmetric(self):
        topo = _triangle()
        for cell in topo.cell_names:
            for neighbor in topo.neighbors(cell):
                assert cell in topo.neighbors(neighbor)

    def test_region_and_tracking_area_lookups(self):
        topo = _triangle()
        assert topo.region_of("a") == "r0"
        assert topo.tracking_area_of("c") == "ta1"
        assert topo.cells_in_region("r0") == ("a", "b")
        assert topo.cells_in_tracking_area("ta1") == ("c",)

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            _triangle().index("nope")

    def test_shortest_path_endpoints_and_adjacency(self):
        topo = line_topology("ln", 6)
        path = topo.shortest_path(topo.cell_names[0], topo.cell_names[5])
        assert path[0] == 0 and path[-1] == 5
        for a, b in zip(path, path[1:]):
            assert b in topo.neighbor_indices(a)

    def test_shortest_path_deterministic(self):
        topo = ring_topology("rg", 8)
        first = topo.cell_names[0]
        goal = topo.cell_names[3]
        assert topo.shortest_path(first, goal) == topo.shortest_path(first, goal)

    def test_summary_mentions_every_region(self):
        topo = grid_topology("g", 3, 3)
        text = topo.summary()
        for region in topo.regions:
            assert region in text


class TestBuilders:
    def test_line_topology_shape(self):
        topo = line_topology("ln", 8, cells_per_ta=2, tas_per_region=2)
        assert topo.num_cells == 8
        assert len(topo.tracking_areas) == 4
        assert len(topo.regions) == 2
        # A line has n-1 edges: interior cells have two neighbors.
        assert len(topo.neighbors(topo.cell_names[3])) == 2
        assert len(topo.neighbors(topo.cell_names[0])) == 1

    def test_ring_topology_closes(self):
        topo = ring_topology("rg", 8)
        first, last = topo.cell_names[0], topo.cell_names[-1]
        assert first in topo.neighbors(last)

    def test_grid_topology_shape(self):
        topo = grid_topology("g", 3, 4, rows_per_region=2)
        assert topo.num_cells == 12
        assert len(topo.tracking_areas) == 3  # one TA per row
        assert len(topo.regions) == 2
        # Interior cell has 4 neighbors, corner has 2.
        corner = topo.cell_names[0]
        assert len(topo.neighbors(corner)) == 2
