"""Fidelity gate over topology-annotated runs.

The gate must stay meaningful with mobility and chaos injected: the
topology-driven ``handover-storm`` preset (satellite of the topology
subsystem) has to clear the stock thresholds, and the scenario-mode
guard has to reject topology flags.

The ``stadium-cell-kill`` chaos scenario is gated in CI at a relaxed
``flow_length_jsd`` ceiling: the underlying ``stadium-flash-crowd``
workload already exceeds the stock 0.25 ceiling at small scales with
topology off (measured 0.2817 without vs 0.2833 with chaos at
scale 0.1 / seed 1), so the relaxation covers a pre-existing
baseline-vs-reference gap, not a topology regression.
"""

from __future__ import annotations

import pytest

from repro.validate import run_gate


def test_topology_flags_rejected_for_scenario_sources():
    with pytest.raises(ValueError):
        run_gate("phone-evening", topology="motorway")
    with pytest.raises(ValueError):
        run_gate("phone-evening", chaos="off")


def test_handover_storm_gate_passes_with_topology():
    # The preset's default topology (motorway) drives the storm; the
    # annotated timeline — HO/TAU injections included — must clear the
    # stock thresholds.
    scorecard = run_gate("handover-storm", scale=0.1, seed=1)
    assert scorecard.passed, scorecard.summary()
    assert scorecard.violations["event_rate"] == 0.0
    assert scorecard.violations["stream_rate"] == 0.0
