"""Mobility models: trajectory contract, commuter tides, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import (
    CommuterMobility,
    RandomWaypointMobility,
    StationaryMobility,
    get_mobility,
    grid_topology,
    line_topology,
)

HOUR = 3600.0


def _rng(seed: int = 7) -> np.random.Generator:
    return np.random.default_rng(seed)


def _check_contract(topo, times, cells, start):
    """The MobilityModel.trajectory invariants every model must hold."""
    assert times[0] == start
    assert np.all(np.diff(times) > 0)
    assert np.all((cells >= 0) & (cells < topo.num_cells))
    assert np.all(np.diff(cells) != 0)


class TestStationary:
    def test_never_moves(self):
        topo = line_topology("ln", 4)
        times, cells = StationaryMobility().trajectory(
            topo, 2, _rng(), 0.0, 4 * HOUR
        )
        assert list(times) == [0.0]
        assert list(cells) == [2]


class TestRandomWaypoint:
    def test_moves_are_neighbor_hops(self):
        topo = grid_topology("g", 3, 3)
        times, cells = RandomWaypointMobility(
            mean_dwell_seconds=600.0
        ).trajectory(topo, 4, _rng(), 0.0, 8 * HOUR)
        _check_contract(topo, times, cells, 0.0)
        assert len(times) > 1  # 8h at 10min dwell: it moved
        for a, b in zip(cells, cells[1:]):
            assert int(b) in topo.neighbor_indices(int(a))

    def test_horizon_respected(self):
        topo = grid_topology("g", 3, 3)
        times, _ = RandomWaypointMobility(mean_dwell_seconds=300.0).trajectory(
            topo, 0, _rng(), HOUR, 2 * HOUR
        )
        assert times.max() <= 2 * HOUR

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(mean_dwell_seconds=0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(max_moves=0)


class TestCommuter:
    def test_out_and_back(self):
        topo = line_topology("ln", 8, prefix="mw")
        model = CommuterMobility(
            work_cells=("mw06", "mw07"),
            depart_hour=8.5,
            return_hour=9.5,
            transit_seconds=60.0,
            jitter_hours=0.1,
        )
        times, cells = model.trajectory(topo, 0, _rng(), 8 * HOUR, 10 * HOUR)
        _check_contract(topo, times, cells, 8 * HOUR)
        work = {topo.index("mw06"), topo.index("mw07")}
        assert work & set(int(c) for c in cells)  # reached the workplace
        assert int(cells[-1]) == 0  # back home by end of window

    def test_window_after_departure_starts_at_work(self):
        # The run window opens at 12:00: the 08:00 leg already happened,
        # so the trajectory must *start* at the workplace.
        topo = line_topology("ln", 8, prefix="mw")
        model = CommuterMobility(
            work_cells=("mw07",),
            depart_hour=8.0,
            return_hour=17.0,
            transit_seconds=60.0,
            jitter_hours=0.0,
        )
        times, cells = model.trajectory(topo, 0, _rng(), 12 * HOUR, 14 * HOUR)
        assert int(cells[0]) == topo.index("mw07")
        assert list(cells) == [topo.index("mw07")]  # no in-window moves

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CommuterMobility(work_cells=(), depart_hour=25.0)
        with pytest.raises(ValueError):
            CommuterMobility(work_cells=(), transit_seconds=0.0)
        with pytest.raises(ValueError):
            CommuterMobility(work_cells=(), jitter_hours=-0.5)


class TestRegistry:
    def test_builtin_names(self):
        assert isinstance(get_mobility("stationary"), StationaryMobility)
        assert isinstance(get_mobility("random-waypoint"), RandomWaypointMobility)
        assert isinstance(get_mobility("commuter"), CommuterMobility)

    def test_instance_passthrough(self):
        model = RandomWaypointMobility(mean_dwell_seconds=42.0)
        assert get_mobility(model) is model

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_mobility("teleport")
