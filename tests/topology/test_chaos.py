"""Chaos schedule: event validation, capacity scaling, reboot slots."""

from __future__ import annotations

import pytest

from repro.topology import (
    NO_CHAOS,
    CellOutage,
    ChaosSchedule,
    FirmwareStorm,
    RegionDegrade,
    line_topology,
    ring_topology,
)


class TestEvents:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CellOutage(cell="a", start=0.0, duration=0.0)
        with pytest.raises(ValueError):
            RegionDegrade(region="r", start=0.0, duration=10.0, capacity_factor=0.0)
        with pytest.raises(ValueError):
            RegionDegrade(region="r", start=0.0, duration=10.0, capacity_factor=1.5)
        with pytest.raises(ValueError):
            FirmwareStorm(start=0.0, reboot_seconds=0.0)
        with pytest.raises(TypeError):
            ChaosSchedule(events=("not-an-event",))

    def test_outage_window(self):
        outage = CellOutage(cell="a", start=100.0, duration=50.0)
        assert outage.end == 150.0

    def test_storm_slots_follow_ta_order(self):
        topo = ring_topology("rg", 8, cells_per_ta=2)
        storm = FirmwareStorm(start=1000.0, stagger_seconds=600.0)
        slots = [storm.slot_of(topo, ta) for ta in topo.tracking_areas]
        assert slots == [1000.0, 1600.0, 2200.0, 2800.0]

    def test_storm_scoped_to_named_tas(self):
        topo = ring_topology("rg", 8, cells_per_ta=2)
        target = topo.tracking_areas[2]
        storm = FirmwareStorm(start=0.0, tracking_areas=(target,))
        assert storm.slot_of(topo, target) == 0.0
        assert storm.slot_of(topo, topo.tracking_areas[0]) is None


class TestSchedule:
    def test_no_chaos_is_falsy(self):
        assert not NO_CHAOS
        assert NO_CHAOS.summary() == "no chaos events"

    def test_validate_rejects_unknown_references(self):
        topo = line_topology("ln", 4)
        with pytest.raises(KeyError):
            ChaosSchedule(
                events=(CellOutage(cell="ghost", start=0.0, duration=1.0),)
            ).validate(topo)
        with pytest.raises(KeyError):
            ChaosSchedule(
                events=(RegionDegrade(region="ghost", start=0.0, duration=1.0),)
            ).validate(topo)
        with pytest.raises(KeyError):
            ChaosSchedule(
                events=(FirmwareStorm(start=0.0, tracking_areas=("ghost",)),)
            ).validate(topo)

    def test_validate_passes_and_chains(self):
        topo = line_topology("ln", 4)
        schedule = ChaosSchedule(
            events=(
                CellOutage(cell=topo.cell_names[0], start=0.0, duration=1.0),
            )
        )
        assert schedule.validate(topo) is schedule

    def test_service_scale_compounds(self):
        schedule = ChaosSchedule(
            events=(
                RegionDegrade(region="r0", start=0.0, duration=100.0,
                              capacity_factor=0.5),
                RegionDegrade(region="r0", start=50.0, duration=100.0,
                              capacity_factor=0.5),
            )
        )
        assert schedule.service_scale("r0", 25.0) == 2.0
        assert schedule.service_scale("r0", 75.0) == 4.0  # overlap compounds
        assert schedule.service_scale("r0", 200.0) == 1.0
        assert schedule.service_scale("other", 25.0) == 1.0

    def test_cell_dead_window_is_half_open(self):
        schedule = ChaosSchedule(
            events=(CellOutage(cell="a", start=10.0, duration=10.0),)
        )
        assert not schedule.cell_dead("a", 9.9)
        assert schedule.cell_dead("a", 10.0)
        assert schedule.cell_dead("a", 19.9)
        assert not schedule.cell_dead("a", 20.0)
        assert not schedule.cell_dead("b", 15.0)

    def test_event_kind_properties(self):
        schedule = ChaosSchedule(
            events=(
                CellOutage(cell="a", start=0.0, duration=1.0),
                RegionDegrade(region="r", start=0.0, duration=1.0),
                FirmwareStorm(start=0.0),
            )
        )
        assert len(schedule.outages) == 1
        assert len(schedule.degrades) == 1
        assert len(schedule.storms) == 1
        assert "cell-outage" in schedule.summary()
