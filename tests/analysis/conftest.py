"""Shared fixtures: lint small in-memory package trees.

``lint_snippet`` writes a source snippet at a path *inside* a synthetic
``repro`` package directory (so ``FileContext.pkg_rel`` zone checks see
``workload/...``, ``service/...`` and friends exactly as they do for
the real tree) and lints it with a chosen rule subset.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import run_lint, select_rules


@pytest.fixture
def pkg_root(tmp_path):
    root = tmp_path / "repro"
    root.mkdir()
    return root


@pytest.fixture
def lint_snippet(pkg_root):
    def _lint(pkg_path: str, source: str, rules=None):
        file = pkg_root / pkg_path
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source))
        return run_lint([file], select_rules(rules))

    return _lint
