"""Framework mechanics: suppressions, rule registry, result plumbing."""

from __future__ import annotations

import pytest

from repro.analysis import available_rule_names, select_rules
from repro.analysis.framework import Finding


ALL_RULES = [
    "rng-discipline",
    "wallclock-in-deterministic-path",
    "hot-path-purity",
    "fork-safety",
    "schema-registry",
    "invariant-guard",
]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_same_line_allow_suppresses(lint_snippet):
    result = lint_snippet(
        "workload/a.py",
        """
        import time

        def f():
            return time.time()  # repro-lint: allow[wallclock-in-deterministic-path]
        """,
        ["R002"],
    )
    assert result.clean


def test_line_above_allow_suppresses(lint_snippet):
    result = lint_snippet(
        "workload/b.py",
        """
        import time

        def f():
            # repro-lint: allow[wallclock-in-deterministic-path]
            return time.time()
        """,
        ["R002"],
    )
    assert result.clean


def test_allow_by_rule_id_and_star(lint_snippet):
    for tag in ("R002", "*"):
        result = lint_snippet(
            f"workload/c_{tag.strip('*') or 'star'}.py",
            f"""
            import time

            def f():
                return time.time()  # repro-lint: allow[{tag}]
            """,
            ["R002"],
        )
        assert result.clean, tag


def test_allow_for_other_rule_does_not_suppress(lint_snippet):
    result = lint_snippet(
        "workload/d.py",
        """
        import time

        def f():
            return time.time()  # repro-lint: allow[rng-discipline]
        """,
        ["R002"],
    )
    assert [f.rule_id for f in result.findings] == ["R002"]


def test_docstring_mention_is_not_a_suppression(lint_snippet):
    # Only real COMMENT tokens suppress; the marker inside a string
    # (docstring on the line above) must not.
    result = lint_snippet(
        "workload/e.py",
        '''
        import time

        def f():
            """repro-lint: allow[wallclock-in-deterministic-path]"""
            return time.time()
        ''',
        ["R002"],
    )
    assert [f.rule_id for f in result.findings] == ["R002"]


def test_allow_buried_in_block_body_does_not_cover_header(lint_snippet):
    result = lint_snippet(
        "core/kern.py",
        """
        from repro.analysis import hot_path

        @hot_path
        def kernel(xs):
            for x in xs:
                pass  # repro-lint: allow[hot-path-purity]
        """,
        ["R003"],
    )
    assert [f.rule_id for f in result.findings] == ["R003"]


# ----------------------------------------------------------------------
# Registry / selection
# ----------------------------------------------------------------------
def test_available_rule_names():
    assert available_rule_names() == ALL_RULES


def test_select_rules_by_name_id_and_dedup():
    assert [r.id for r in select_rules(None)] == [
        "R001", "R002", "R003", "R004", "R005", "R006",
    ]
    chosen = select_rules(["R003", "hot-path-purity", "R001"])
    assert [r.id for r in chosen] == ["R001", "R003"]


def test_select_rules_unknown_raises():
    with pytest.raises(KeyError, match="unknown rule 'nope'"):
        select_rules(["nope"])


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def test_finding_format_and_dict():
    finding = Finding(
        rule="rng-discipline",
        rule_id="R001",
        severity="error",
        path="core/x.py",
        line=7,
        col=4,
        message="boom",
    )
    assert finding.format() == "core/x.py:7:4: R001[rng-discipline] boom"
    assert finding.as_dict()["rule_id"] == "R001"


def test_unparseable_file_is_an_error_not_a_crash(lint_snippet):
    result = lint_snippet("core/broken.py", "def f(:\n", ["R001"])
    assert result.files == 0
    assert len(result.errors) == 1
    assert not result.clean


def test_findings_sorted_by_location(lint_snippet):
    result = lint_snippet(
        "core/multi.py",
        """
        import random
        import time

        def f():
            t = time.time()
            return random.random() + t
        """,
        ["R001", "R002"],
    )
    assert [f.rule_id for f in result.findings] == ["R002", "R001"]
    lines = [f.line for f in result.findings]
    assert lines == sorted(lines)
