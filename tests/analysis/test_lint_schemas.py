"""The schema constant table and its round-trip with every writer."""

from __future__ import annotations

import re

from repro.analysis.schemas import (
    FIDELITY_SCORECARD_V1,
    LINT_BASELINE_V1,
    LINT_REPORT_V1,
    METRICS_V1,
    PIPELINE_PROFILE_V1,
    SCHEMAS,
    SERVICE_STATUS_V2,
)

_SHAPE = re.compile(r"^repro/[a-z0-9_-]+/v\d+$")


def test_table_shape_and_keys():
    assert SCHEMAS == {
        "metrics": METRICS_V1,
        "service-status": SERVICE_STATUS_V2,
        "fidelity-scorecard": FIDELITY_SCORECARD_V1,
        "pipeline-profile": PIPELINE_PROFILE_V1,
        "lint-report": LINT_REPORT_V1,
        "lint-baseline": LINT_BASELINE_V1,
    }
    for key, value in SCHEMAS.items():
        assert _SHAPE.match(value), value
        assert value.split("/")[1] == key, (key, value)
    assert len(set(SCHEMAS.values())) == len(SCHEMAS)


def test_metrics_writer_round_trip():
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("x").inc()
    assert registry.to_json()["schema"] == METRICS_V1


def test_service_status_uses_table():
    from repro.service.status import STATUS_SCHEMA_VERSION

    assert STATUS_SCHEMA_VERSION == SERVICE_STATUS_V2


def test_pipeline_profile_round_trip():
    from repro.obs.profile import PipelineProfile

    profile = PipelineProfile(total_seconds=1.0)
    payload = profile.to_dict()
    assert payload["schema"] == PIPELINE_PROFILE_V1
    assert PipelineProfile.from_dict(payload).schema == PIPELINE_PROFILE_V1


def test_scorecard_schema_uses_table():
    from repro.validate.scorecard import SCHEMA

    assert SCHEMA == FIDELITY_SCORECARD_V1


def test_lint_report_uses_table():
    from repro.analysis.framework import LintResult, report_json

    assert report_json(LintResult())["schema"] == LINT_REPORT_V1


def test_lint_baseline_uses_table(tmp_path):
    import json

    from repro.analysis.framework import Baseline

    path = tmp_path / "b.json"
    Baseline().save(path)
    assert json.loads(path.read_text())["schema"] == LINT_BASELINE_V1
