"""Baseline add/expire contract: grandfather, survive drift, go stale."""

from __future__ import annotations

import json

import pytest

from repro.analysis import run_lint, select_rules
from repro.analysis.framework import Baseline
from repro.analysis.schemas import LINT_BASELINE_V1

BAD = """\
import time


def f():
    return time.time()
"""


def _lint(path):
    return run_lint([path], select_rules(["R002"]))


@pytest.fixture
def bad_file(pkg_root):
    file = pkg_root / "workload" / "w.py"
    file.parent.mkdir()
    file.write_text(BAD)
    return file


def test_baseline_grandfathers_findings(bad_file):
    result = _lint(bad_file)
    assert len(result.findings) == 1
    baseline = Baseline.from_findings(result.findings, result.line_text)

    fresh, baselined, stale = baseline.apply(result.findings, result.line_text)
    assert fresh == [] and stale == []
    assert len(baselined) == 1


def test_baseline_survives_line_drift(bad_file):
    result = _lint(bad_file)
    baseline = Baseline.from_findings(result.findings, result.line_text)

    # Unrelated edit above the finding: its line number moves, its text
    # doesn't — fingerprints key on the text, so the entry still matches.
    bad_file.write_text("import os\n" + BAD)
    drifted = _lint(bad_file)
    assert drifted.findings[0].line != result.findings[0].line
    fresh, baselined, stale = baseline.apply(drifted.findings, drifted.line_text)
    assert fresh == [] and stale == []
    assert len(baselined) == 1


def test_fixed_finding_goes_stale(bad_file):
    result = _lint(bad_file)
    baseline = Baseline.from_findings(result.findings, result.line_text)

    bad_file.write_text("def f(clock):\n    return clock()\n")
    fixed = _lint(bad_file)
    assert fixed.clean
    fresh, baselined, stale = baseline.apply(fixed.findings, fixed.line_text)
    assert fresh == [] and baselined == []
    assert len(stale) == 1
    assert stale[0]["rule"] == "wallclock-in-deterministic-path"


def test_new_finding_stays_fresh(bad_file):
    result = _lint(bad_file)
    baseline = Baseline.from_findings(result.findings, result.line_text)

    bad_file.write_text(BAD + "\n\ndef g():\n    return time.monotonic()\n")
    grown = _lint(bad_file)
    assert len(grown.findings) == 2
    fresh, baselined, stale = baseline.apply(grown.findings, grown.line_text)
    assert len(fresh) == 1 and len(baselined) == 1 and stale == []
    assert "time.monotonic" in fresh[0].message


def test_duplicate_lines_fingerprint_by_occurrence(bad_file):
    # Two textually identical violations must baseline as two entries.
    bad_file.write_text(
        "import time\n\n\ndef f():\n    return time.time()\n\n\n"
        "def g():\n    return time.time()\n"
    )
    result = _lint(bad_file)
    assert len(result.findings) == 2
    baseline = Baseline.from_findings(result.findings, result.line_text)
    prints = {e["fingerprint"] for e in baseline.entries}
    assert len(prints) == 2
    fresh, baselined, stale = baseline.apply(result.findings, result.line_text)
    assert fresh == [] and stale == [] and len(baselined) == 2


def test_save_load_round_trip(bad_file, tmp_path):
    result = _lint(bad_file)
    baseline = Baseline.from_findings(result.findings, result.line_text)
    path = tmp_path / "baseline.json"
    baseline.save(path)

    payload = json.loads(path.read_text())
    assert payload["schema"] == LINT_BASELINE_V1
    loaded = Baseline.load(path)
    assert loaded.entries == sorted(
        baseline.entries, key=lambda e: (e["path"], e["rule"], e["fingerprint"])
    )


def test_load_rejects_foreign_schema(tmp_path):
    path = tmp_path / "nope.json"
    path.write_text(json.dumps({"schema": "repro/other/v9", "findings": []}))
    with pytest.raises(ValueError, match="not a lint baseline"):
        Baseline.load(path)
