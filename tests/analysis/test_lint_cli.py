"""`repro lint` end to end: exit codes, reporters, baseline flow, and
the hard gate that the shipped tree itself lints clean."""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import lint_main
from repro.analysis.schemas import LINT_REPORT_V1

SRC_TREE = Path(repro.__file__).parent

BAD = """\
import time


def f():
    return time.time()
"""


@pytest.fixture
def bad_file(pkg_root):
    file = pkg_root / "workload" / "w.py"
    file.parent.mkdir()
    file.write_text(BAD)
    return file


def run_main(*args, **kwargs):
    out = io.StringIO()
    code = lint_main(*args, out=out, **kwargs)
    return code, out.getvalue()


# ----------------------------------------------------------------------
# The gate: the repository's own sources are lint-clean.
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean_without_baseline():
    code, output = run_main([SRC_TREE])
    assert code == 0, output
    assert output.startswith("clean:")


# ----------------------------------------------------------------------
# Exit codes and reporters
# ----------------------------------------------------------------------
def test_findings_exit_1_human_format(bad_file):
    code, output = run_main([bad_file])
    assert code == 1
    assert "R002[wallclock-in-deterministic-path]" in output
    assert "1 finding(s) across 1 file(s)" in output


def test_unknown_rule_exits_2(bad_file, capsys):
    code, _ = run_main([bad_file], rules=["bogus"])
    assert code == 2
    assert "unknown rule 'bogus'" in capsys.readouterr().err


def test_list_rules():
    code, output = run_main(list_rules=True)
    assert code == 0
    for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006"):
        assert rule_id in output


def test_json_report_to_stdout(bad_file):
    code, output = run_main([bad_file], json_out="-")
    assert code == 1
    payload = json.loads(output)
    assert payload["schema"] == LINT_REPORT_V1
    assert payload["clean"] is False
    assert payload["findings"][0]["rule_id"] == "R002"


def test_json_report_to_file(bad_file, tmp_path):
    report = tmp_path / "lint.json"
    code, _ = run_main([bad_file], json_out=str(report))
    assert code == 1
    assert json.loads(report.read_text())["schema"] == LINT_REPORT_V1


# ----------------------------------------------------------------------
# Baseline flow
# ----------------------------------------------------------------------
def test_baseline_write_then_filter_then_expire(bad_file, tmp_path):
    baseline = tmp_path / "baseline.json"

    code, output = run_main(
        [bad_file], baseline=str(baseline), write_baseline=True
    )
    assert code == 0
    assert "baseline of 1 finding(s)" in output

    # Grandfathered finding: run is clean, annotated as baselined.
    code, output = run_main([bad_file], baseline=str(baseline))
    assert code == 0
    assert "(1 baselined)" in output

    # Fixing the violation strands the entry: stale fails the run.
    bad_file.write_text("def f(clock):\n    return clock()\n")
    code, output = run_main([bad_file], baseline=str(baseline))
    assert code == 1
    assert "stale baseline entry" in output


def test_corrupt_baseline_exits_2(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    code, _ = run_main([bad_file], baseline=str(baseline))
    assert code == 2
    assert "cannot load baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Subprocess e2e (the CI entry point)
# ----------------------------------------------------------------------
def _repro_lint(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_TREE.parent)
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_subprocess_clean_tree():
    proc = _repro_lint(str(SRC_TREE))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_subprocess_bad_file_json(bad_file):
    proc = _repro_lint(str(bad_file), "--json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["schema"] == LINT_REPORT_V1
    assert payload["findings"]


def test_cli_subprocess_rule_filter(bad_file):
    proc = _repro_lint(str(bad_file), "--rule", "rng-discipline")
    assert proc.returncode == 0, proc.stdout + proc.stderr
