"""Each lint rule fires on a known-bad snippet and stays quiet on the
matching known-good one."""

from __future__ import annotations

import ast
from pathlib import Path

import repro
from repro.analysis import run_lint, select_rules
from repro.analysis.hotpath import HOT_PATH_MANIFEST, hot_path


def rules_of(result):
    return [f.rule_id for f in result.findings]


# ----------------------------------------------------------------------
# R001 rng-discipline
# ----------------------------------------------------------------------
def test_r001_unseeded_default_rng_fires(lint_snippet):
    result = lint_snippet(
        "workload/bad_rng.py",
        """
        import numpy as np

        rng = np.random.default_rng()
        """,
        ["rng-discipline"],
    )
    assert rules_of(result) == ["R001"]
    assert "unseeded" in result.findings[0].message


def test_r001_legacy_numpy_and_stdlib_random_fire(lint_snippet):
    result = lint_snippet(
        "core/legacy.py",
        """
        import random

        import numpy as np

        np.random.seed(0)
        x = np.random.rand(3)
        y = random.random()
        """,
        ["R001"],
    )
    assert rules_of(result) == ["R001", "R001", "R001"]


def test_r001_seeded_rng_is_fine_outside_topology(lint_snippet):
    result = lint_snippet(
        "workload/good_rng.py",
        """
        import numpy as np

        def make(seed):
            return np.random.default_rng(seed)
        """,
        ["R001"],
    )
    assert result.clean


def test_r001_topology_requires_seed_sequence_key(lint_snippet):
    bad = lint_snippet(
        "topology/bad_key.py",
        """
        from numpy.random import default_rng

        def make(seed):
            return default_rng(seed)
        """,
        ["R001"],
    )
    assert rules_of(bad) == ["R001"]
    assert "SeedSequence" in bad.findings[0].message

    good = lint_snippet(
        "topology/good_key.py",
        """
        import numpy as np

        def make(entropy):
            return np.random.default_rng(np.random.SeedSequence(entropy))
        """,
        ["R001"],
    )
    assert good.clean


def test_r001_skips_test_files(lint_snippet):
    result = lint_snippet(
        "workload/test_sampling.py",
        """
        import numpy as np

        rng = np.random.default_rng()
        """,
        ["R001"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# R002 wallclock-in-deterministic-path
# ----------------------------------------------------------------------
def test_r002_wallclock_call_fires_in_zone(lint_snippet):
    result = lint_snippet(
        "workload/w.py",
        """
        import time

        def stamp():
            return time.time()
        """,
        ["wallclock-in-deterministic-path"],
    )
    assert rules_of(result) == ["R002"]


def test_r002_resolves_from_import_alias(lint_snippet):
    result = lint_snippet(
        "core/t.py",
        """
        from time import perf_counter as pc

        def f():
            return pc()
        """,
        ["R002"],
    )
    assert rules_of(result) == ["R002"]
    assert "time.perf_counter" in result.findings[0].message


def test_r002_injectable_clock_default_is_legal(lint_snippet):
    result = lint_snippet(
        "core/clocked.py",
        """
        import time

        def f(clock=time.monotonic):
            return clock()
        """,
        ["R002"],
    )
    assert result.clean


def test_r002_only_applies_in_deterministic_zones(lint_snippet):
    result = lint_snippet(
        "service/free.py",
        """
        import time

        def f():
            return time.time()
        """,
        ["R002"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# R003 hot-path-purity
# ----------------------------------------------------------------------
_HOT_LOOP = """
    from repro.analysis import hot_path

    @hot_path
    def kernel(xs):
        out = []
        for x in xs:
            out.append(x + 1)
        return out
"""


def test_r003_loop_and_append_fire_in_hot_function(lint_snippet):
    result = lint_snippet("core/kern.py", _HOT_LOOP, ["hot-path-purity"])
    assert rules_of(result) == ["R003", "R003"]
    messages = " / ".join(f.message for f in result.findings)
    assert "for" in messages and "append" in messages


def test_r003_undecorated_function_is_ignored(lint_snippet):
    result = lint_snippet(
        "core/cold.py",
        _HOT_LOOP.replace("@hot_path\n    ", ""),
        ["R003"],
    )
    assert result.clean


def test_r003_header_allow_covers_loop_body(lint_snippet):
    result = lint_snippet(
        "core/kern_ok.py",
        """
        from repro.analysis import hot_path

        @hot_path
        def kernel(shards):
            out = []
            # repro-lint: allow[hot-path-purity]
            for s in shards:
                out.append(s.sum())
            return out
        """,
        ["R003"],
    )
    assert result.clean


def test_r003_manifest_entry_marks_function_hot(lint_snippet):
    result = lint_snippet(
        "service/merge.py",
        """
        class ChunkMerger:
            def pop_ready_chunks(self):
                for item in self.pending:
                    yield item
        """,
        ["R003"],
    )
    assert rules_of(result) == ["R003"]


def test_r003_per_iteration_object_construction_fires(lint_snippet):
    result = lint_snippet(
        "core/objy.py",
        """
        from repro.analysis import hot_path

        class Event:
            pass

        @hot_path
        def decode(rows):
            # repro-lint: allow[hot-path-purity]
            for row in rows:
                yield Event(row)
        """,
        ["R003"],
    )
    # The loop itself is allowed; construction inside is separately
    # flagged only when the loop is not suppressed (block coverage).
    assert result.clean


def test_hot_path_decorator_marks_and_preserves():
    @hot_path
    def f(x):
        "doc"
        return x + 1

    assert f.__repro_hot_path__ is True
    assert f(1) == 2
    assert f.__doc__ == "doc"


def test_hot_path_manifest_entries_exist_in_tree():
    src = Path(repro.__file__).parent
    for suffix, qualname in HOT_PATH_MANIFEST:
        path = src / suffix
        assert path.exists(), f"manifest names missing module {suffix}"
        tree = ast.parse(path.read_text())
        found = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, ast.FunctionDef):
                        found.add(f"{node.name}.{child.name}")
            elif isinstance(node, ast.FunctionDef):
                found.add(node.name)
        assert qualname in found, f"{suffix}: {qualname} not found"


# ----------------------------------------------------------------------
# R004 fork-safety
# ----------------------------------------------------------------------
def test_r004_module_level_mutable_state_fires(lint_snippet):
    result = lint_snippet(
        "core/forker.py",
        """
        import multiprocessing
        import threading

        _CACHE = {}
        _LOCK = threading.Lock()
        """,
        ["fork-safety"],
    )
    assert rules_of(result) == ["R004", "R004"]
    messages = [f.message for f in result.findings]
    assert any("mutable container" in m for m in messages)
    assert any("synchronization primitive" in m for m in messages)


def test_r004_teardown_registries_and_dunders_exempt(lint_snippet):
    result = lint_snippet(
        "core/forker_ok.py",
        """
        import multiprocessing

        __all__ = ["spawn"]
        _LIVE_POOLS = []
        _LIVE_WORKERS = []

        def spawn():
            local = {}
            return local
        """,
        ["R004"],
    )
    assert result.clean


def test_r004_skips_modules_that_never_fork(lint_snippet):
    result = lint_snippet(
        "obs/plain.py",
        """
        _CACHE = {}
        """,
        ["R004"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# R005 schema-registry
# ----------------------------------------------------------------------
def test_r005_adhoc_schema_literal_fires(lint_snippet):
    result = lint_snippet(
        "obs/writer.py",
        """
        SCHEMA = "repro/foo/v1"
        """,
        ["schema-registry"],
    )
    assert rules_of(result) == ["R005"]
    assert "repro/foo/v1" in result.findings[0].message


def test_r005_docstring_mentions_are_fine(lint_snippet):
    result = lint_snippet(
        "obs/documented.py",
        '''
        """repro/foo/v1"""

        def emit():
            """repro/bar/v2"""
        ''',
        ["R005"],
    )
    assert result.clean


def test_r005_exempts_the_schema_table_itself(lint_snippet):
    result = lint_snippet(
        "analysis/schemas.py",
        """
        METRICS_V1 = "repro/metrics/v1"
        """,
        ["R005"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# R006 invariant-guard
# ----------------------------------------------------------------------
def test_r006_unaudited_counter_mutation_fires(lint_snippet):
    result = lint_snippet(
        "service/sidecar.py",
        """
        class Sidecar:
            def bump(self):
                self.delivered += 1

            def tally(self, account, name):
                account.by_cohort[name] = 1
        """,
        ["invariant-guard"],
    )
    assert rules_of(result) == ["R006", "R006"]
    assert "Sidecar.bump" in result.findings[0].message


def test_r006_audited_mutators_pass_on_real_tree():
    src = Path(repro.__file__).parent / "service"
    result = run_lint([src], select_rules(["invariant-guard"]))
    assert result.files
    assert result.clean, "\n".join(f.format() for f in result.findings)


def test_r006_scope_is_service_only(lint_snippet):
    result = lint_snippet(
        "workload/elsewhere.py",
        """
        class Counter:
            def bump(self):
                self.delivered += 1
        """,
        ["R006"],
    )
    assert result.clean
