"""Module system, layers, optimizers, losses edge cases, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    MLP,
    Adam,
    Dropout,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    SGD,
    Sequential,
    Tensor,
    TransformerDecoder,
    bce_with_logits,
    clip_grad_norm,
    cross_entropy,
    gaussian_nll,
    load_checkpoint,
    save_checkpoint,
    softmax,
)


class TestModuleSystem:
    def test_named_parameters_nested(self, rng):
        mlp = MLP(3, 4, 2, rng)
        names = dict(mlp.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_num_parameters(self, rng):
        layer = Linear(3, 4, rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng)
        out = layer(Tensor(rng.normal(size=(1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        model.eval()
        assert not model.training
        assert all(not m.training for m in model)
        model.train()
        assert model.training

    def test_state_dict_roundtrip(self, rng):
        a = MLP(3, 4, 2, rng)
        b = MLP(3, 4, 2, np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_load_state_dict_missing_key(self, rng):
        mlp = MLP(3, 4, 2, rng)
        state = mlp.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError, match="missing"):
            mlp.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self, rng):
        mlp = MLP(3, 4, 2, rng)
        state = mlp.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            mlp.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 7, rng)
        assert layer(Tensor(rng.normal(size=(5, 4)))).shape == (5, 7)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 7, rng, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 28

    def test_layernorm_normalizes(self, rng):
        norm = LayerNorm(16)
        out = norm(Tensor(rng.normal(3.0, 5.0, size=(4, 16)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_eval_identity(self, rng):
        drop = Dropout(0.5, rng)
        drop.eval()
        x = rng.normal(size=(10, 10))
        np.testing.assert_array_equal(drop(Tensor(x)).data, x)

    def test_dropout_train_masks_and_scales(self, rng):
        drop = Dropout(0.5, rng)
        x = np.ones((200, 200))
        out = drop(Tensor(x)).data
        kept = out != 0
        assert 0.4 < kept.mean() < 0.6
        np.testing.assert_allclose(out[kept], 2.0)

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_mlp_activations(self, rng):
        for activation in ("gelu", "relu", "tanh"):
            mlp = MLP(3, 4, 2, rng, activation=activation)
            assert mlp(Tensor(rng.normal(size=(2, 3)))).shape == (2, 2)
        with pytest.raises(ValueError):
            MLP(3, 4, 2, rng, activation="swish")

    def test_attention_head_divisibility(self, rng):
        from repro.nn import MultiHeadSelfAttention

        with pytest.raises(ValueError, match="divisible"):
            MultiHeadSelfAttention(d_model=10, num_heads=3, rng=rng)

    def test_transformer_rejects_long_input(self, rng):
        decoder = TransformerDecoder(9, 8, 1, 2, 16, max_len=4, rng=rng)
        with pytest.raises(ValueError, match="exceeds positional"):
            decoder(Tensor(rng.normal(size=(1, 5, 9))))

    def test_transformer_rejects_wrong_token_dim(self, rng):
        decoder = TransformerDecoder(9, 8, 1, 2, 16, max_len=8, rng=rng)
        with pytest.raises(ValueError, match="token dim"):
            decoder(Tensor(rng.normal(size=(1, 3, 7))))

    def test_lstm_state_threading(self, rng):
        lstm = LSTM(3, 5, rng, num_layers=2)
        x = Tensor(rng.normal(size=(2, 4, 3)))
        out, states = lstm(x)
        assert out.shape == (2, 4, 5)
        assert len(states) == 2
        # Continuing from returned state differs from a fresh start.
        y = Tensor(rng.normal(size=(2, 1, 3)))
        cont, _ = lstm(y, states)
        fresh, _ = lstm(y)
        assert not np.allclose(cont.data, fresh.data)


class TestOptimizers:
    def _quadratic_step(self, optimizer, param):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
        return float((param.data**2).sum())

    def test_sgd_descends(self):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = SGD([param], lr=0.1)
        values = [self._quadratic_step(optimizer, param) for _ in range(20)]
        assert values[-1] < values[0] * 0.1

    def test_sgd_momentum_descends(self):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = SGD([param], lr=0.05, momentum=0.9)
        values = [self._quadratic_step(optimizer, param) for _ in range(30)]
        assert values[-1] < values[0]

    def test_adam_descends(self):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = Adam([param], lr=0.3)
        values = [self._quadratic_step(optimizer, param) for _ in range(50)]
        assert values[-1] < values[0] * 0.01

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_step_skips_gradless_params(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1)
        optimizer.step()  # no grad accumulated; must not raise
        np.testing.assert_array_equal(param.data, [1.0])

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        optimizer = Adam([param], lr=0.1, weight_decay=1.0)
        for _ in range(20):
            optimizer.zero_grad()
            param.grad = np.zeros(1)
            optimizer.step()
        assert abs(param.data[0]) < 10.0

    def test_clip_grad_norm(self):
        params = [Parameter(np.zeros(3)) for _ in range(2)]
        params[0].grad = np.array([3.0, 0.0, 0.0])
        params[1].grad = np.array([0.0, 4.0, 0.0])
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(sum((p.grad**2).sum() for p in params))
        assert total == pytest.approx(1.0)

    def test_clip_noop_when_small(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.3, 0.4])
        clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, [0.3, 0.4])

    @pytest.mark.parametrize("max_norm", [0.0, -1.0, float("nan")])
    def test_clip_rejects_non_positive_max_norm(self, max_norm):
        """max_norm=0 used to silently zero every gradient."""
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.3, 0.4])
        with pytest.raises(ValueError, match="max_norm"):
            clip_grad_norm([param], max_norm=max_norm)

    def test_adam_partial_freeze_bias_correction(self):
        """Hand-computed two-step trace with a parameter frozen at step 1.

        With per-parameter step counts, ``b``'s first update (at global
        step 2) gets *first-step* bias correction: m̂ = 0.2/0.1 = 2,
        v̂ = 0.004/0.001 = 4, so the update is lr·2/(2+eps) ≈ lr.  The
        old shared counter would have used the second-step corrections
        (m̂ ≈ 1.0526, √v̂ ≈ 1.4146) — a ~26% under-step.
        """
        lr, eps = 0.1, 1e-8
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0]))
        optimizer = Adam([a, b], lr=lr, betas=(0.9, 0.999), eps=eps)

        a.grad, b.grad = np.array([1.0]), None
        optimizer.step()
        np.testing.assert_array_equal(b.data, [1.0])  # frozen: untouched
        # a after one step: m̂=1, v̂=1 -> update lr/(1+eps).
        np.testing.assert_allclose(a.data, [1.0 - lr * 1.0 / (1.0 + eps)])

        a.grad, b.grad = np.array([1.0]), np.array([2.0])
        optimizer.step()
        np.testing.assert_array_equal(optimizer.step_counts, [2, 1])
        # b's hand trace: m = 0.1*2 = 0.2, v = 0.001*4 = 0.004;
        # bias1 = 1-0.9 = 0.1, bias2 = 1-0.999 = 0.001 (count=1).
        m_hat, v_hat = 0.2 / 0.1, 0.004 / 0.001
        expected_b = 1.0 - lr * m_hat / (np.sqrt(v_hat) + eps)
        np.testing.assert_allclose(b.data, [expected_b], rtol=1e-15)
        # a's hand trace at count=2: m = 0.9*0.1 + 0.1 = 0.19,
        # v = 0.999*0.001 + 0.001; bias1 = 1-0.81, bias2 = 1-0.999**2.
        m_a = 0.9 * 0.1 + 0.1
        v_a = 0.999 * 0.001 + 0.001
        a1 = 1.0 - lr * 1.0 / (1.0 + eps)
        expected_a = a1 - lr * (m_a / (1 - 0.9**2)) / (
            np.sqrt(v_a / (1 - 0.999**2)) + eps
        )
        np.testing.assert_allclose(a.data, [expected_a], rtol=1e-12)

    def test_adam_uniform_path_matches_per_param_path(self):
        """Freezing nothing: fused fast path == per-segment slow path."""
        rng = np.random.default_rng(0)
        grads = [rng.normal(size=(4, 3)) for _ in range(10)]
        fast = Parameter(np.ones((4, 3)))
        opt_fast = Adam([fast], lr=0.05)
        # Force the slow path by pairing with an always-frozen parameter.
        slow = Parameter(np.ones((4, 3)))
        frozen = Parameter(np.zeros(2))
        opt_slow = Adam([slow, frozen], lr=0.05)
        for grad in grads:
            fast.grad = grad.copy()
            opt_fast.step()
            slow.grad, frozen.grad = grad.copy(), None
            opt_slow.step()
        np.testing.assert_array_equal(fast.data, slow.data)
        np.testing.assert_array_equal(frozen.data, np.zeros(2))

    def test_arena_adoption_and_view_refresh(self):
        param = Parameter(np.arange(3.0))
        optimizer = Adam([param], lr=0.1)
        assert param.data.base is optimizer.arena.data
        view_before = param.data
        param.grad = np.ones(3)
        optimizer.step()
        # In-place arena update, but a *fresh* view object each step so
        # identity-based weight-change detection (the inference engine's
        # rebind check) still fires.
        assert param.data is not view_before
        assert param.data.base is optimizer.arena.data
        np.testing.assert_array_equal(view_before, param.data)

    def test_arena_resyncs_externally_rebound_data(self):
        param = Parameter(np.zeros(3))
        optimizer = SGD([param], lr=0.5)
        param.data = np.full(3, 7.0)  # e.g. load_state_dict
        param.grad = np.ones(3)
        optimizer.step()
        np.testing.assert_allclose(param.data, np.full(3, 6.5))

    def test_rebind_carries_moments_to_new_params(self):
        old = Parameter(np.ones(4))
        optimizer = Adam([old], lr=0.1)
        old.grad = np.ones(4)
        optimizer.step()
        state = optimizer.state_buffers()
        new = Parameter(old.data.copy())
        optimizer.rebind([new])
        after = optimizer.state_buffers()
        np.testing.assert_array_equal(state["m"], after["m"])
        np.testing.assert_array_equal(state["steps"], after["steps"])
        frozen_old = old.data.copy()
        new.grad = np.ones(4)
        optimizer.step()
        np.testing.assert_array_equal(old.data, frozen_old)  # old untouched
        assert not np.array_equal(new.data, frozen_old)

    def test_rebind_rejects_mismatched_shapes(self):
        optimizer = Adam([Parameter(np.ones(4))], lr=0.1)
        with pytest.raises(ValueError, match="shape"):
            optimizer.rebind([Parameter(np.ones(5))])
        with pytest.raises(ValueError, match="expects 1 parameters"):
            optimizer.rebind([])

    def test_duplicate_params_rejected(self):
        param = Parameter(np.ones(2))
        with pytest.raises(ValueError, match="duplicate"):
            Adam([param, param], lr=0.1)

    def test_deepcopied_optimizer_keeps_stepping_its_copy(self):
        """NetShare's adapt deep-copies model+optimizers together:
        deepcopy preserves param/view identity while detaching the view
        from the arena buffer, so sync must check aliasing, not just
        identity."""
        import copy

        class Holder:
            pass

        holder = Holder()
        holder.param = Parameter(np.ones(4))
        holder.optimizer = SGD([holder.param], lr=0.5)
        clone = copy.deepcopy(holder)
        clone.param.data += 5.0  # in-place drift on the detached view
        clone.param.grad = np.ones(4)
        clone.optimizer.step()
        np.testing.assert_allclose(clone.param.data, np.full(4, 5.5))
        assert clone.param.data.base is clone.optimizer.arena.data
        # The original pair is untouched by the clone's step.
        np.testing.assert_array_equal(holder.param.data, np.ones(4))


class TestLossEdgeCases:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 2, 1, 1])
        loss = cross_entropy(Tensor(logits), targets).item()
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        manual = -np.log(probs[np.arange(4), targets]).mean()
        assert loss == pytest.approx(manual)

    def test_cross_entropy_target_range_checked(self, rng):
        with pytest.raises(ValueError, match="targets must lie"):
            cross_entropy(Tensor(rng.normal(size=(2, 3))), np.array([0, 5]))

    def test_empty_mask_rejected(self, rng):
        with pytest.raises(ValueError, match="zero positions"):
            cross_entropy(
                Tensor(rng.normal(size=(2, 3))), np.array([0, 1]), np.zeros(2, bool)
            )

    def test_gaussian_nll_matches_scipy(self, rng):
        from scipy.stats import norm as scipy_norm

        mean = rng.normal(size=(5,))
        raw = rng.normal(size=(5,))
        targets = rng.normal(size=(5,))
        loss = gaussian_nll(Tensor(mean), Tensor(raw), targets, min_scale=1e-3).item()
        scale = np.log1p(np.exp(-np.abs(raw))) + np.maximum(raw, 0) + 1e-3
        manual = -scipy_norm.logpdf(targets, mean, scale).mean()
        assert loss == pytest.approx(manual, rel=1e-9)

    def test_bce_extreme_logits_finite(self):
        loss = bce_with_logits(Tensor(np.array([500.0, -500.0])), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-12)

    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(3, 7)) * 50)).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)
        assert np.all(out >= 0)


class TestSerialization:
    def test_checkpoint_roundtrip_with_metadata(self, rng, tmp_path):
        model = MLP(3, 4, 2, rng)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path, metadata={"note": "hello", "epochs": 3})
        clone = MLP(3, 4, 2, np.random.default_rng(7))
        metadata = load_checkpoint(clone, path)
        assert metadata == {"note": "hello", "epochs": 3}
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(model(Tensor(x)).data, clone(Tensor(x)).data)

    def test_checkpoint_without_metadata(self, rng, tmp_path):
        model = Linear(2, 2, rng)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        assert load_checkpoint(model, path) == {}
