"""Shared numeric kernels: attention einsum ops, stable sums, dtype load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Tensor,
    attention_mix,
    attention_scores,
    load_checkpoint,
    save_checkpoint,
    softmax,
)
from repro.nn.numpy_ops import (
    MIN_SCALE,
    gelu,
    layer_norm,
    softmax as np_softmax,
    softplus,
    stable_last_sum,
)


class TestAttentionOps:
    def test_scores_match_matmul(self, rng):
        q = Tensor(rng.normal(size=(2, 3, 5, 4)))
        k = Tensor(rng.normal(size=(2, 3, 7, 4)))
        out = attention_scores(q, k)
        expected = q.data @ k.data.transpose(0, 1, 3, 2)
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_mix_matches_matmul(self, rng):
        w = Tensor(rng.normal(size=(2, 3, 5, 7)))
        v = Tensor(rng.normal(size=(2, 3, 7, 4)))
        out = attention_mix(w, v)
        np.testing.assert_allclose(out.data, w.data @ v.data, atol=1e-12)

    def test_scores_gradcheck(self, rng):
        q = Tensor(rng.normal(size=(1, 2, 3, 4)), requires_grad=True)
        k = Tensor(rng.normal(size=(1, 2, 3, 4)), requires_grad=True)
        attention_scores(q, k).sum().backward()
        eps = 1e-6
        for tensor in (q, k):
            flat = tensor.data.ravel()
            for idx in (0, 7, 23):
                original = flat[idx]
                flat[idx] = original + eps
                up = float(attention_scores(q, k).sum().item())
                flat[idx] = original - eps
                down = float(attention_scores(q, k).sum().item())
                flat[idx] = original
                numeric = (up - down) / (2 * eps)
                assert tensor.grad.ravel()[idx] == pytest.approx(numeric, abs=1e-4)

    def test_mix_gradcheck(self, rng):
        w = Tensor(rng.normal(size=(1, 2, 3, 3)), requires_grad=True)
        v = Tensor(rng.normal(size=(1, 2, 3, 4)), requires_grad=True)
        attention_mix(w, v).sum().backward()
        eps = 1e-6
        for tensor in (w, v):
            flat = tensor.data.ravel()
            for idx in (0, 5, 11):
                original = flat[idx]
                flat[idx] = original + eps
                up = float(attention_mix(w, v).sum().item())
                flat[idx] = original - eps
                down = float(attention_mix(w, v).sum().item())
                flat[idx] = original
                numeric = (up - down) / (2 * eps)
                assert tensor.grad.ravel()[idx] == pytest.approx(numeric, abs=1e-4)


class TestStableSum:
    def test_matches_sum_value(self, rng):
        x = rng.random((3, 5, 17))
        np.testing.assert_allclose(
            stable_last_sum(x), x.sum(axis=-1, keepdims=True), rtol=1e-14
        )

    def test_layout_independent(self, rng):
        """Identical rows in differently-shaped arrays sum identically."""
        row = rng.random(29)
        stacked_3d = np.tile(row, (2, 4, 1))
        stacked_2d = row[None, :]
        a = stable_last_sum(stacked_3d)[1, 2, 0]
        b = stable_last_sum(stacked_2d)[0, 0]
        c = stable_last_sum(row[None])[0, 0]
        assert a == b == c

    def test_odd_and_single_lengths(self):
        assert stable_last_sum(np.array([[5.0]]))[0, 0] == 5.0
        x = np.arange(7.0)[None]
        assert stable_last_sum(x)[0, 0] == pytest.approx(21.0)

    def test_softmax_pair_bitwise(self, rng):
        """numpy softmax == Tensor softmax on equal rows, bit for bit."""
        x = rng.normal(size=(2, 4, 9, 9)) * 8
        tensor_out = softmax(Tensor(x), axis=-1).data
        # Same rows presented in a differently-shaped array.
        for t in range(9):
            rows = np.ascontiguousarray(x[:, :, t, :])
            np_out = np_softmax(rows)
            assert np.array_equal(np_out, tensor_out[:, :, t, :])


class TestSharedExpressions:
    def test_gelu_matches_tensor_gelu(self, rng):
        x = rng.normal(size=(4, 33)) * 3
        assert np.array_equal(gelu(x), Tensor(x).gelu().data)

    def test_gelu_preserves_float32(self):
        out = gelu(np.linspace(-3, 3, 11, dtype=np.float32))
        assert out.dtype == np.float32

    def test_softplus_min_scale_shared_with_loss(self):
        import inspect

        from repro.nn.losses import gaussian_nll

        default = inspect.signature(gaussian_nll).parameters["min_scale"].default
        assert default is MIN_SCALE

    def test_layer_norm_matches_module(self, rng):
        from repro.nn import LayerNorm

        module = LayerNorm(16)
        module.gain.data = rng.normal(size=16)
        module.shift.data = rng.normal(size=16)
        x = rng.normal(size=(3, 16))
        expected = module(Tensor(x)).data
        got = layer_norm(x, module.gain.data, module.shift.data)
        assert np.array_equal(got, expected)

    def test_softplus_stable(self):
        out = softplus(np.array([-800.0, 0.0, 800.0]))
        assert np.all(np.isfinite(out))


class TestDtypeOnLoad:
    def test_load_checkpoint_float32(self, tmp_path, rng):
        head = MLP(8, 16, 4, rng)
        path = tmp_path / "head.npz"
        save_checkpoint(head, path, {"kind": "test"})
        restored = MLP(8, 16, 4, rng)
        load_checkpoint(restored, path, dtype=np.float32)
        for param in restored.parameters():
            assert param.data.dtype == np.float32
        # Values round-trip through the cast.
        np.testing.assert_allclose(
            restored.fc1.weight.data, head.fc1.weight.data.astype(np.float32)
        )

    def test_load_checkpoint_default_float64(self, tmp_path, rng):
        head = MLP(4, 8, 2, rng)
        path = tmp_path / "head.npz"
        save_checkpoint(head, path)
        restored = MLP(4, 8, 2, rng)
        load_checkpoint(restored, path)
        for param in restored.parameters():
            assert param.data.dtype == np.float64
