"""Behavioral tests of attention and the transformer backbone."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MultiHeadSelfAttention,
    Tensor,
    TransformerDecoder,
    causal_mask,
    no_grad,
)


class TestCausalMask:
    def test_shape_and_pattern(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        # Diagonal and below: visible (0); above: blocked (very negative).
        for i in range(4):
            for j in range(4):
                if j <= i:
                    assert mask[i, j] == 0.0
                else:
                    assert mask[i, j] < -1e8


class TestAttentionBehavior:
    def test_causal_masking_blocks_future(self, rng):
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 6, 8))
        mask = causal_mask(6)
        with no_grad():
            base = attn(Tensor(x), mask).data.copy()
            perturbed = x.copy()
            perturbed[0, 5] += 100.0  # only the last position changes
            out = attn(Tensor(perturbed), mask).data
        # Positions 0..4 must be unaffected by position 5.
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-10)
        assert not np.allclose(out[0, 5], base[0, 5])

    def test_unmasked_attention_is_bidirectional(self, rng):
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        with no_grad():
            base = attn(Tensor(x), None).data.copy()
            perturbed = x.copy()
            perturbed[0, 3] += 100.0
            out = attn(Tensor(perturbed), None).data
        # Without a mask, earlier positions do see position 3.
        assert not np.allclose(out[0, 0], base[0, 0])

    def test_permutation_of_batch_items_independent(self, rng):
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, rng=rng)
        a = rng.normal(size=(1, 5, 8))
        b = rng.normal(size=(1, 5, 8))
        mask = causal_mask(5)
        with no_grad():
            separate_a = attn(Tensor(a), mask).data
            stacked = attn(Tensor(np.concatenate([b, a])), mask).data
        np.testing.assert_allclose(stacked[1], separate_a[0], atol=1e-10)

    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(d_model=12, num_heads=3, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 7, 12))), causal_mask(7))
        assert out.shape == (2, 7, 12)


class TestTransformerBehavior:
    def test_prefix_stability(self, rng):
        """Hidden state at position t depends only on tokens 0..t.

        This is the property that makes KV-cache generation valid.
        """
        decoder = TransformerDecoder(
            d_token=9, d_model=16, num_layers=2, num_heads=2, d_ff=32,
            max_len=32, rng=rng,
        )
        tokens = rng.normal(size=(1, 10, 9))
        with no_grad():
            full = decoder(Tensor(tokens)).data
            prefix = decoder(Tensor(tokens[:, :6])).data
        np.testing.assert_allclose(full[0, :6], prefix[0], atol=1e-10)

    def test_positional_embedding_breaks_permutation_symmetry(self, rng):
        decoder = TransformerDecoder(
            d_token=9, d_model=16, num_layers=1, num_heads=2, d_ff=32,
            max_len=16, rng=rng,
        )
        token = rng.normal(size=(9,))
        same = np.tile(token, (1, 3, 1))
        with no_grad():
            out = decoder(Tensor(same)).data
        # Identical tokens at different positions must map differently.
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_dropout_only_active_in_training(self, rng):
        decoder = TransformerDecoder(
            d_token=9, d_model=16, num_layers=1, num_heads=2, d_ff=32,
            max_len=16, rng=rng, dropout=0.5,
        )
        tokens = rng.normal(size=(1, 5, 9))
        decoder.eval()
        with no_grad():
            a = decoder(Tensor(tokens)).data
            b = decoder(Tensor(tokens)).data
        np.testing.assert_array_equal(a, b)
        decoder.train()
        with no_grad():
            c = decoder(Tensor(tokens)).data
            d = decoder(Tensor(tokens)).data
        assert not np.array_equal(c, d)
