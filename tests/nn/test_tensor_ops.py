"""Forward-pass correctness of Tensor primitives against numpy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concatenate, no_grad, stack, where
from repro.nn.tensor import is_grad_enabled


class TestArithmetic:
    def test_add_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        np.testing.assert_allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_add_broadcasts(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        np.testing.assert_allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_scalar_right_ops(self, rng):
        a = rng.normal(size=(2, 3))
        np.testing.assert_allclose((2.0 - Tensor(a)).data, 2.0 - a)
        np.testing.assert_allclose((2.0 / Tensor(np.abs(a) + 1)).data, 2.0 / (np.abs(a) + 1))
        np.testing.assert_allclose((3.0 * Tensor(a)).data, 3.0 * a)

    def test_sub_mul_div(self, rng):
        a, b = rng.normal(size=(5,)), rng.normal(size=(5,)) + 3.0
        np.testing.assert_allclose((Tensor(a) - Tensor(b)).data, a - b)
        np.testing.assert_allclose((Tensor(a) * Tensor(b)).data, a * b)
        np.testing.assert_allclose((Tensor(a) / Tensor(b)).data, a / b)

    def test_neg_pow(self, rng):
        a = np.abs(rng.normal(size=(4,))) + 0.5
        np.testing.assert_allclose((-Tensor(a)).data, -a)
        np.testing.assert_allclose((Tensor(a) ** 2.5).data, a**2.5)

    def test_matmul_2d(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_batched(self, rng):
        a, b = rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_broadcast_weight(self, rng):
        a, w = rng.normal(size=(2, 7, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(w)).data, a @ w)


class TestActivationsAndReductions:
    def test_exp_log_sqrt(self, rng):
        a = np.abs(rng.normal(size=(6,))) + 0.1
        np.testing.assert_allclose(Tensor(a).exp().data, np.exp(a))
        np.testing.assert_allclose(Tensor(a).log().data, np.log(a))
        np.testing.assert_allclose(Tensor(a).sqrt().data, np.sqrt(a))

    def test_tanh_sigmoid_relu_abs(self, rng):
        a = rng.normal(size=(4, 4)) * 3
        np.testing.assert_allclose(Tensor(a).tanh().data, np.tanh(a))
        np.testing.assert_allclose(Tensor(a).sigmoid().data, 1 / (1 + np.exp(-a)), rtol=1e-12)
        np.testing.assert_allclose(Tensor(a).relu().data, np.maximum(a, 0))
        np.testing.assert_allclose(Tensor(a).abs().data, np.abs(a))

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor(np.array([-1000.0, 1000.0])).sigmoid().data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_sum_axes(self, rng):
        a = rng.normal(size=(3, 4, 5))
        np.testing.assert_allclose(Tensor(a).sum().data, a.sum())
        np.testing.assert_allclose(Tensor(a).sum(axis=1).data, a.sum(axis=1))
        np.testing.assert_allclose(
            Tensor(a).sum(axis=(0, 2), keepdims=True).data, a.sum(axis=(0, 2), keepdims=True)
        )

    def test_mean_axes(self, rng):
        a = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(a).mean().data, a.mean())
        np.testing.assert_allclose(
            Tensor(a).mean(axis=-1, keepdims=True).data, a.mean(axis=-1, keepdims=True)
        )

    def test_max(self, rng):
        a = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(a).max().data, a.max())
        np.testing.assert_allclose(Tensor(a).max(axis=0).data, a.max(axis=0))

    def test_clip(self, rng):
        a = rng.normal(size=(10,)) * 3
        np.testing.assert_allclose(Tensor(a).clip(-1, 1).data, np.clip(a, -1, 1))


class TestShapeOps:
    def test_reshape(self, rng):
        a = rng.normal(size=(2, 6))
        np.testing.assert_allclose(Tensor(a).reshape((3, 4)).data, a.reshape(3, 4))

    def test_transpose_default_and_axes(self, rng):
        a = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(Tensor(a).transpose().data, a.transpose())
        np.testing.assert_allclose(
            Tensor(a).transpose((2, 0, 1)).data, a.transpose(2, 0, 1)
        )

    def test_getitem_slices(self, rng):
        a = rng.normal(size=(4, 5, 6))
        np.testing.assert_allclose(Tensor(a)[1].data, a[1])
        np.testing.assert_allclose(Tensor(a)[:, 2:4, :].data, a[:, 2:4, :])
        np.testing.assert_allclose(Tensor(a)[:, 1, ::2].data, a[:, 1, ::2])

    def test_concatenate(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 5))
        out = concatenate([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_allclose(out.data, np.concatenate([a, b], axis=1))

    def test_stack(self, rng):
        parts = [rng.normal(size=(3, 2)) for _ in range(4)]
        out = stack([Tensor(p) for p in parts], axis=1)
        np.testing.assert_allclose(out.data, np.stack(parts, axis=1))

    def test_where(self, rng):
        a, b = rng.normal(size=(3, 3)), rng.normal(size=(3, 3))
        cond = a > 0
        np.testing.assert_allclose(where(cond, Tensor(a), Tensor(b)).data, np.where(cond, a, b))


class TestGradMachinery:
    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(3))
        assert as_tensor(t) is t

    def test_no_grad_disables_graph(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_detach_cuts_graph(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = (x * 2.0).detach() * 3.0
        y.sum().backward()
        assert x.grad is None

    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_default_seed_ones(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (x * 2.0).backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_requires_grad_propagates(self, rng):
        a = Tensor(rng.normal(size=(2,)), requires_grad=True)
        b = Tensor(rng.normal(size=(2,)))
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_item_and_len_and_repr(self):
        t = Tensor(np.array([[1.0, 2.0]]))
        assert len(t) == 1
        assert "shape=(1, 2)" in repr(t)
        assert Tensor(np.array(5.0)).item() == 5.0


class TestErrorCases:
    def test_log_of_negative_is_nan(self):
        # numpy semantics: nan, not an exception (documents behavior)
        with np.errstate(invalid="ignore"):
            out = Tensor(np.array([-1.0])).log().data
        assert np.isnan(out[0])

    def test_one_hot_out_of_range_raises(self):
        from repro.nn import one_hot

        with pytest.raises(ValueError, match="indices must lie"):
            one_hot(np.array([0, 7]), num_classes=6)
