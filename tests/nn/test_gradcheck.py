"""Finite-difference gradient checks for every primitive and key composites.

Central differences at eps=1e-6 on float64 give ~1e-9 accuracy; the
tolerance of 1e-5 leaves ample headroom while catching any sign/shape
error outright.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    MLP,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    Tensor,
    bce_with_logits,
    causal_mask,
    concatenate,
    cross_entropy,
    gaussian_nll,
    log_softmax,
    mse,
    softmax,
    softplus,
    stack,
    where,
)

EPS = 1e-6
TOL = 1e-5


def gradcheck(fn, *arrays):
    """Compare autograd gradients of sum(fn(*tensors)) to finite differences."""
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*tensors)
    out.sum().backward()
    for t, base in zip(tensors, arrays):
        analytic = t.grad
        assert analytic is not None, "missing gradient"
        numeric = np.zeros_like(base)
        flat = base.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + EPS
            hi = fn(*[Tensor(a) for a in arrays]).data.sum()
            flat[i] = original - EPS
            lo = fn(*[Tensor(a) for a in arrays]).data.sum()
            flat[i] = original
            num_flat[i] = (hi - lo) / (2 * EPS)
        np.testing.assert_allclose(analytic, numeric, atol=TOL, rtol=TOL)


class TestPrimitiveGrads:
    def test_add_broadcast(self, rng):
        gradcheck(lambda a, b: a + b, rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_sub_broadcast(self, rng):
        gradcheck(lambda a, b: a - b, rng.normal(size=(2, 1, 4)), rng.normal(size=(3, 1)))

    def test_mul_broadcast(self, rng):
        gradcheck(lambda a, b: a * b, rng.normal(size=(3, 4)), rng.normal(size=(3, 1)))

    def test_div(self, rng):
        gradcheck(
            lambda a, b: a / b,
            rng.normal(size=(3, 4)),
            rng.normal(size=(3, 4)) + 3.0,
        )

    def test_matmul(self, rng):
        gradcheck(lambda a, b: a @ b, rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))

    def test_matmul_batched(self, rng):
        gradcheck(
            lambda a, b: a @ b, rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 2))
        )

    def test_matmul_broadcast_weight(self, rng):
        gradcheck(
            lambda a, b: a @ b, rng.normal(size=(2, 3, 4)), rng.normal(size=(4, 5))
        )

    def test_pow(self, rng):
        gradcheck(lambda a: a**3.0, rng.normal(size=(5,)))

    def test_exp_log_sqrt(self, rng):
        base = np.abs(rng.normal(size=(4,))) + 0.5
        gradcheck(lambda a: a.exp(), rng.normal(size=(4,)))
        gradcheck(lambda a: a.log(), base.copy())
        gradcheck(lambda a: a.sqrt(), base.copy())

    def test_tanh_sigmoid_relu_gelu_abs(self, rng):
        x = rng.normal(size=(3, 3)) * 2
        gradcheck(lambda a: a.tanh(), x.copy())
        gradcheck(lambda a: a.sigmoid(), x.copy())
        # Keep away from the ReLU/abs kinks where the subgradient is ambiguous.
        off_kink = x + np.sign(x) * 0.05
        gradcheck(lambda a: a.relu(), off_kink.copy())
        gradcheck(lambda a: a.abs(), off_kink.copy())
        gradcheck(lambda a: a.gelu(), x.copy())

    def test_reductions(self, rng):
        x = rng.normal(size=(3, 4))
        gradcheck(lambda a: a.sum(axis=0), x.copy())
        gradcheck(lambda a: a.mean(axis=1, keepdims=True), x.copy())
        gradcheck(lambda a: a.sum(), x.copy())

    def test_max_reduction(self, rng):
        # Unique maxima keep the subgradient well-defined.
        x = rng.permutation(20).astype(np.float64).reshape(4, 5)
        gradcheck(lambda a: a.max(axis=1), x.copy())

    def test_shape_ops(self, rng):
        x = rng.normal(size=(2, 6))
        gradcheck(lambda a: a.reshape((3, 4)) * 2.0, x.copy())
        gradcheck(lambda a: a.transpose((1, 0)) * 3.0, x.copy())

    def test_getitem(self, rng):
        x = rng.normal(size=(4, 5))
        gradcheck(lambda a: a[1:3, ::2] * 2.0, x.copy())

    def test_concatenate_stack(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        gradcheck(lambda x, y: concatenate([x, y], axis=1), a.copy(), b.copy())
        c, d = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        gradcheck(lambda x, y: stack([x, y], axis=1), c.copy(), d.copy())

    def test_where(self, rng):
        a, b = rng.normal(size=(3, 3)), rng.normal(size=(3, 3))
        cond = rng.random((3, 3)) > 0.5
        gradcheck(lambda x, y: where(cond, x, y), a.copy(), b.copy())

    def test_clip(self, rng):
        x = rng.normal(size=(6,)) * 2
        # Keep values away from the clip boundaries.
        x = x + np.sign(x) * 0.05
        gradcheck(lambda a: a.clip(-1.0, 1.0), x.copy())


class TestCompositeGrads:
    def test_softmax(self, rng):
        w = rng.normal(size=(3, 5))
        gradcheck(lambda a: softmax(a, axis=-1) * w, rng.normal(size=(3, 5)))

    def test_log_softmax(self, rng):
        w = rng.normal(size=(2, 4))
        gradcheck(lambda a: log_softmax(a, axis=-1) * w, rng.normal(size=(2, 4)))

    def test_softplus(self, rng):
        gradcheck(lambda a: softplus(a), rng.normal(size=(7,)) * 3)

    def test_cross_entropy(self, rng):
        targets = rng.integers(0, 4, size=(3, 5))
        mask = rng.random((3, 5)) > 0.3
        gradcheck(
            lambda a: cross_entropy(a, targets, mask), rng.normal(size=(3, 5, 4))
        )

    def test_gaussian_nll(self, rng):
        targets = rng.normal(size=(3, 4))
        gradcheck(
            lambda m, s: gaussian_nll(m, s, targets),
            rng.normal(size=(3, 4)),
            rng.normal(size=(3, 4)),
        )

    def test_bce_with_logits(self, rng):
        targets = (rng.random((6,)) > 0.5).astype(float)
        gradcheck(lambda a: bce_with_logits(a, targets), rng.normal(size=(6,)) * 2)

    def test_mse(self, rng):
        targets = rng.normal(size=(4,))
        gradcheck(lambda a: mse(a, targets), rng.normal(size=(4,)))


class TestModuleGrads:
    def test_linear(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4))
        out = layer(Tensor(x, requires_grad=True))
        out.sum().backward()
        assert layer.weight.grad is not None and layer.weight.grad.shape == (4, 3)
        assert layer.bias.grad is not None and layer.bias.grad.shape == (3,)

    def test_layernorm_grad(self, rng):
        norm = LayerNorm(5)
        gradcheck(lambda a: norm(a), rng.normal(size=(3, 5)))

    def test_mlp_grad(self, rng):
        mlp = MLP(4, 8, 2, rng)
        gradcheck(lambda a: mlp(a), rng.normal(size=(3, 4)))

    def test_attention_grad_small(self, rng):
        attn = MultiHeadSelfAttention(d_model=4, num_heads=2, rng=rng)
        mask = causal_mask(3)
        gradcheck(lambda a: attn(a, mask), rng.normal(size=(1, 3, 4)))

    def test_lstm_grad_small(self, rng):
        lstm = LSTM(3, 4, rng)
        gradcheck(lambda a: lstm(a)[0], rng.normal(size=(1, 3, 3)))
