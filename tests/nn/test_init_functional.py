"""Initializers and functional helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import one_hot
from repro.nn.init import kaiming_uniform, normal, ones, xavier_uniform, zeros


class TestInitializers:
    def test_xavier_bounds(self, rng):
        w = xavier_uniform((64, 64), rng)
        bound = np.sqrt(6.0 / 128)
        assert np.all(np.abs(w) <= bound)
        assert w.std() > bound / 4  # actually spread out, not degenerate

    def test_xavier_gain_scales(self, rng):
        small = xavier_uniform((32, 32), np.random.default_rng(0), gain=1.0)
        large = xavier_uniform((32, 32), np.random.default_rng(0), gain=2.0)
        np.testing.assert_allclose(large, 2.0 * small)

    def test_kaiming_bounds(self, rng):
        w = kaiming_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 100)
        assert np.all(np.abs(w) <= bound)

    def test_normal_std(self, rng):
        w = normal((200, 200), rng, std=0.02)
        assert w.std() == pytest.approx(0.02, rel=0.1)
        assert abs(w.mean()) < 0.005

    def test_zeros_ones(self):
        np.testing.assert_array_equal(zeros((2, 3)), np.zeros((2, 3)))
        np.testing.assert_array_equal(ones((4,)), np.ones(4))

    def test_1d_fans(self, rng):
        w = xavier_uniform((10,), rng)
        assert w.shape == (10,)

    def test_empty_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            xavier_uniform((), rng)


class TestOneHot:
    def test_basic_encoding(self):
        out = one_hot(np.array([0, 2, 1]), num_classes=3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_multidimensional(self):
        out = one_hot(np.array([[0, 1], [1, 0]]), num_classes=2)
        assert out.shape == (2, 2, 2)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_empty_input(self):
        out = one_hot(np.array([], dtype=int), num_classes=4)
        assert out.shape == (0, 4)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), num_classes=3)
